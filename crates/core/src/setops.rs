//! Warp-wide set operations — the `getCandidates` primitives.
//!
//! Candidate sets are sorted vertex lists; intersections and differences
//! against neighbor lists are computed with one binary search per element,
//! one element per SIMT lane (§IV of the paper). The *combined* variants
//! process the sets of several unroll slots in a single stream of waves
//! (Fig. 8): a prefix sum over set sizes maps each lane to a
//! `(set index, offset)` pair, lanes binary-search their own operand, a
//! ballot collects the survivors and `popc`-ranking compacts them into the
//! output sets. With unroll size 1 the same code degrades to the naive
//! one-set-at-a-time operation whose lane utilization is bounded by the
//! data graph's (usually small) degrees — the effect Fig. 13 quantifies.

use stmatch_gpusim::{Warp, WARP_SIZE};
use stmatch_graph::{Graph, VertexId};
use stmatch_pattern::{LabelMask, OpKind};

/// Copies `sources[u]` into `outs[u]` keeping only vertices admitted by
/// `mask`, for all slots in one combined lane stream.
pub fn materialize_base(
    warp: &mut Warp,
    g: &Graph,
    sources: &[&[VertexId]],
    mask: LabelMask,
    outs: &mut [Vec<VertexId>],
) {
    debug_assert_eq!(sources.len(), outs.len());
    for (src, out) in sources.iter().zip(outs.iter_mut()) {
        out.clear();
        out.reserve(src.len());
    }
    stream_slots(warp, sources, |_warp, slot, value| {
        if mask.is_all() || mask.allows(g.label(value)) {
            outs[slot].push(value);
        }
    });
}

/// Computes `outs[u] = inputs[u] (∩ | −) operands[u]` filtered by `mask`,
/// for all slots in one combined lane stream. Inputs and operands must be
/// sorted ascending; outputs are sorted ascending.
pub fn apply_op(
    warp: &mut Warp,
    g: &Graph,
    inputs: &[&[VertexId]],
    operands: &[&[VertexId]],
    kind: OpKind,
    mask: LabelMask,
    outs: &mut [Vec<VertexId>],
) {
    debug_assert_eq!(inputs.len(), operands.len());
    debug_assert_eq!(inputs.len(), outs.len());
    for (inp, out) in inputs.iter().zip(outs.iter_mut()) {
        out.clear();
        out.reserve(inp.len());
    }
    stream_slots(warp, inputs, |warp, slot, value| {
        let found = operands[slot].binary_search(&value).is_ok();
        let keep = match kind {
            OpKind::Intersect => found,
            OpKind::Difference => !found,
        };
        // One extra lane instruction for the label check on labeled runs.
        if keep && (mask.is_all() || mask.allows(g.label(value))) {
            // Output offset = popc of lower survivor lanes (Fig. 8); with
            // in-order lane simulation a push lands at exactly that offset.
            let _ = warp.rank_in_mask(0, 0);
            outs[slot].push(value);
        }
    });
}

/// Streams the concatenated elements of all slots through SIMT waves,
/// invoking `f(warp, slot, value)` per element, with Fig. 8 accounting:
/// a size prefix-scan per batch, full waves of 32 lanes, and one ballot
/// per wave for the output compaction.
fn stream_slots<F: FnMut(&mut Warp, usize, VertexId)>(
    warp: &mut Warp,
    slots: &[&[VertexId]],
    mut f: F,
) {
    let total: usize = slots.iter().map(|s| s.len()).sum();
    if total == 0 {
        return;
    }
    if slots.len() > 1 {
        // size_scan: one warp scan maps lanes to (set_idx, set_ofs).
        let mut sizes = [0u32; WARP_SIZE];
        for (i, s) in slots.iter().enumerate().take(WARP_SIZE) {
            sizes[i] = s.len() as u32;
        }
        let _ = warp.exclusive_scan(&mut sizes);
    }
    let waves = total.div_ceil(WARP_SIZE);
    let mut slot = 0usize;
    let mut ofs = 0usize;
    for wave in 0..waves {
        let in_wave = (total - wave * WARP_SIZE).min(WARP_SIZE);
        let active = if in_wave == WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << in_wave) - 1
        };
        // Issue the wave: per-lane binary search / copy.
        warp.wave(active, |_| {});
        for _ in 0..in_wave {
            while ofs >= slots[slot].len() {
                slot += 1;
                ofs = 0;
            }
            let value = slots[slot][ofs];
            f(warp, slot, value);
            ofs += 1;
        }
        // bsearch_res ballot for output compaction.
        let _ = warp.ballot(active);
    }
}

/// Counts elements of `set` that satisfy a per-element predicate, as one
/// warp-wide pass (used at the last level, where candidates are counted
/// rather than iterated).
pub fn count_with<F: FnMut(VertexId) -> bool>(
    warp: &mut Warp,
    set: &[VertexId],
    mut pred: F,
) -> u64 {
    let mut count = 0u64;
    warp.simt_for(set.len(), |i| {
        if pred(set[i]) {
            count += 1;
        }
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_graph::gen;

    // Helper that runs `f` on a real warp inside a 1-warp grid launch and
    // returns the warp's metrics.
    fn with_warp<F: Fn(&mut Warp) + Sync>(f: F) -> stmatch_gpusim::WarpMetrics {
        let grid = stmatch_gpusim::Grid::new(stmatch_gpusim::GridConfig {
            num_blocks: 1,
            warps_per_block: 1,
            shared_mem_per_block: 0,
        })
        .unwrap();
        let m = grid.launch(|w| f(w));
        m.warps[0]
    }

    #[test]
    fn intersect_matches_reference() {
        let g = gen::complete(2); // labels unused (mask ALL)
        let a: Vec<VertexId> = vec![1, 3, 5, 7, 9, 11];
        let b: Vec<VertexId> = vec![3, 4, 5, 6, 7];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&b],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
            assert_eq!(outs[0], vec![3, 5, 7]);
        });
    }

    #[test]
    fn difference_matches_reference() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = vec![1, 3, 5, 7];
        let b: Vec<VertexId> = vec![3, 7, 8];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&b],
                OpKind::Difference,
                LabelMask::ALL,
                &mut outs,
            );
            assert_eq!(outs[0], vec![1, 5]);
        });
    }

    #[test]
    fn combined_slots_equal_individual_ops() {
        let g = gen::complete(2);
        let ins: Vec<Vec<VertexId>> = vec![vec![1, 2, 3], vec![10, 20, 30, 40], vec![5]];
        let ops: Vec<Vec<VertexId>> = vec![vec![2, 3, 4], vec![20, 40], vec![6]];
        let _ = with_warp(move |w| {
            let in_refs: Vec<&[VertexId]> = ins.iter().map(|v| v.as_slice()).collect();
            let op_refs: Vec<&[VertexId]> = ops.iter().map(|v| v.as_slice()).collect();
            let mut combined = vec![Vec::new(), Vec::new(), Vec::new()];
            apply_op(
                w,
                &g,
                &in_refs,
                &op_refs,
                OpKind::Intersect,
                LabelMask::ALL,
                &mut combined,
            );
            assert_eq!(combined[0], vec![2, 3]);
            assert_eq!(combined[1], vec![20, 40]);
            assert!(combined[2].is_empty());
        });
    }

    #[test]
    fn combined_ops_issue_fewer_waves() {
        // Eight 4-element sets: one-at-a-time needs 8 waves of 4/32 active;
        // combined needs ceil(32/32) = 1 wave of 32/32.
        let g = gen::complete(2);
        let sets: Vec<Vec<VertexId>> = (0..8).map(|s| vec![s, s + 10, s + 20, s + 30]).collect();
        let op: Vec<VertexId> = (0..64).collect();

        let m_single = with_warp(|w| {
            for s in &sets {
                let mut outs = vec![Vec::new()];
                apply_op(
                    w,
                    &g,
                    &[s.as_slice()],
                    &[op.as_slice()],
                    OpKind::Intersect,
                    LabelMask::ALL,
                    &mut outs,
                );
            }
        });
        let m_combined = with_warp(|w| {
            let in_refs: Vec<&[VertexId]> = sets.iter().map(|v| v.as_slice()).collect();
            let op_refs: Vec<&[VertexId]> = vec![op.as_slice(); 8];
            let mut outs: Vec<Vec<VertexId>> = vec![Vec::new(); 8];
            apply_op(
                w,
                &g,
                &in_refs,
                &op_refs,
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
        });
        assert!(
            m_combined.lane_utilization() > m_single.lane_utilization(),
            "combined {} vs single {}",
            m_combined.lane_utilization(),
            m_single.lane_utilization()
        );
    }

    #[test]
    fn base_materialization_filters_labels() {
        let g = gen::complete(6).relabeled(vec![0, 1, 0, 1, 0, 1]);
        let src: Vec<VertexId> = vec![0, 1, 2, 3, 4, 5];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            materialize_base(w, &g, &[&src], LabelMask::single(1), &mut outs);
            assert_eq!(outs[0], vec![1, 3, 5]);
        });
    }

    #[test]
    fn outputs_stay_sorted() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = (0..100).collect();
        let b: Vec<VertexId> = (0..100).filter(|v| v % 3 == 0).collect();
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&b],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
            assert!(outs[0].windows(2).all(|p| p[0] < p[1]));
            assert_eq!(outs[0].len(), 34);
        });
    }

    #[test]
    fn count_with_accounts_lanes() {
        let set: Vec<VertexId> = (0..40).collect();
        let m = with_warp(move |w| {
            let c = count_with(w, &set, |v| v % 2 == 0);
            assert_eq!(c, 20);
        });
        assert_eq!(m.issued_lane_slots, 64);
        assert_eq!(m.active_lane_slots, 40);
    }
}
