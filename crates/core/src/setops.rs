//! Warp-wide set operations — the `getCandidates` primitives.
//!
//! Candidate sets are sorted vertex lists; intersections and differences
//! against neighbor lists are computed with one membership probe per
//! element, one element per SIMT lane (§IV of the paper). The *combined*
//! variants process the sets of several unroll slots in a single stream of
//! waves (Fig. 8): a prefix sum over set sizes maps each lane to a
//! `(set index, offset)` pair, lanes probe their own operand, a ballot
//! collects the survivors and `popc`-ranking compacts them into the
//! output sets. With unroll size 1 the same code degrades to the naive
//! one-set-at-a-time operation whose lane utilization is bounded by the
//! data graph's (usually small) degrees — the effect Fig. 13 quantifies.
//!
//! **Adaptive membership probes.** The *simulated* cost model charges one
//! lane instruction per streamed element regardless of how the host
//! resolves membership, so the host is free to pick the cheapest real
//! algorithm per slot without perturbing any simulator metric:
//!
//! * [`SetOpAlgo::BinarySearch`] — `O(log |B|)` per element; the
//!   always-correct default for mid-range size ratios.
//! * [`SetOpAlgo::Merge`] — a monotone cursor walked linearly; `O(|A|+|B|)`
//!   total, best when `|B|` is comparable to `|A|`. Correct because each
//!   slot's elements stream in ascending order.
//! * [`SetOpAlgo::Gallop`] — exponential search from the monotone cursor,
//!   then binary search inside the bracket; best when `|B| ≫ |A|`.
//!
//! [`choose_algo`] picks per slot from the size ratio using the
//! [`SetOpTuning`] thresholds (an [`EngineConfig`](crate::config::EngineConfig)
//! knob). An empty operand short-circuits the probe entirely: intersection
//! drops every element, difference keeps every element.
//!
//! **Hub-bitmap paths.** When the graph carries a
//! [`HubBitmapIndex`](stmatch_graph::HubBitmapIndex), two further
//! algorithms become available through [`choose_algo_hub`]:
//!
//! * [`SetOpAlgo::BitmapProbe`] — the operand is a hub row; each streamed
//!   element resolves membership with one O(1) word probe. This is still
//!   an element stream, so wave/scan/ballot accounting stays **identical**
//!   to the classic paths (only the host cost and the
//!   `bitmap_probe_words` counter change).
//! * [`SetOpAlgo::BitmapMerge`] — both sides are bitmap rows; the op is a
//!   stream of word ANDs, 32 words per wave, survivors extracted from the
//!   result words. This path deliberately changes the simulated wave
//!   structure (`ceil(stride/32)` waves instead of `ceil(|A|/32)`), which
//!   is the Fig. 8 win it models; `bitmap_merge_words`/`_waves` account
//!   for it.
//!
//! [`apply_chain_bits_into`] fuses a whole op chain in the bitmap domain
//! when every operand of a slot is a hub, ping/ponging intermediate rows
//! through word-aligned arena scratch (see
//! [`StackArena::split_for_write_bits`](crate::arena::StackArena::split_for_write_bits)).
//! See DESIGN.md §4f for the encoding and the accounting contract.
//!
//! **Sinks.** Outputs stream through the [`SetSink`] trait so callers
//! choose where survivors land: plain `[Vec<VertexId>]` buffers (the
//! baselines, tests) or the flat stack arena's
//! [`ArenaWriter`](crate::arena::ArenaWriter) (the kernel's
//! allocation-free hot path).

use stmatch_gpusim::{Warp, WARP_SIZE};
use stmatch_graph::bitmap::word_probe;
use stmatch_graph::{Graph, VertexId};
use stmatch_pattern::{LabelMask, OpKind};

/// Destination of a combined set operation: one output list per unroll
/// slot. `begin(u, hint)` resets slot `u` before its first `push`; pushes
/// arrive in ascending element order per slot.
pub trait SetSink {
    fn begin(&mut self, slot: usize, capacity_hint: usize);
    fn push(&mut self, slot: usize, value: VertexId);

    /// Bulk append, equivalent to pushing every value in order; sinks
    /// override this with a block copy for the unfiltered-copy fast path.
    fn extend(&mut self, slot: usize, values: &[VertexId]) {
        for &v in values {
            self.push(slot, v);
        }
    }

    /// Accepts one result word of a bitmap-domain op for `slot`. The
    /// bitmap paths call this for every word index of the result row (in
    /// ascending order) before [`SetSink::seal_bits`]; sinks that keep
    /// per-slot bitmap rows (the arena) store the word so dependents can
    /// run in the bitmap domain too. The default discards it.
    fn put_word(&mut self, _slot: usize, _word_index: usize, _word: u64) {}

    /// Marks `slot`'s stored bitmap row complete: every result word was
    /// delivered and the extraction mask filtered nothing, so the row
    /// denotes exactly the slot's element list. Never called for masked
    /// extractions (the row would be a superset of the elements).
    fn seal_bits(&mut self, _slot: usize) {}
}

/// Plain heap-vector sink; reuses each vector's capacity across calls.
impl SetSink for [Vec<VertexId>] {
    #[inline]
    fn begin(&mut self, slot: usize, capacity_hint: usize) {
        self[slot].clear();
        self[slot].reserve(capacity_hint);
    }

    #[inline]
    fn push(&mut self, slot: usize, value: VertexId) {
        self[slot].push(value);
    }

    #[inline]
    fn extend(&mut self, slot: usize, values: &[VertexId]) {
        self[slot].extend_from_slice(values);
    }
}

/// Host-side membership algorithm for one slot of a combined set op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetOpAlgo {
    /// Full-range binary search per streamed element.
    BinarySearch,
    /// Linear merge: a monotone operand cursor advanced element by element.
    Merge,
    /// Galloping (exponential) search from the monotone cursor.
    Gallop,
    /// O(1) word probe of each streamed element against the operand's
    /// hub-bitmap row. Requires operand bits; chosen by
    /// [`choose_algo_hub`] only.
    BitmapProbe,
    /// Word-parallel bitmap ∩/∖ bitmap, 32 words per wave. Requires bits
    /// on both sides; chosen by [`choose_algo_hub`] only.
    BitmapMerge,
}

/// Size-ratio thresholds for [`choose_algo`] / [`choose_algo_hub`]. With
/// `|A|` the input length and `|B|` the operand length: merge when
/// `|B| ≤ merge_ratio·|A|`, gallop when `|B| ≥ gallop_ratio·|A|`, binary
/// search between; a hub operand row upgrades to a bitmap probe when
/// `|B| ≥ bitmap_ratio·|A|`. `force` pins one algorithm for every slot
/// (tests, ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetOpTuning {
    pub merge_ratio: usize,
    pub gallop_ratio: usize,
    /// Minimum `|B| / |A|` ratio for [`SetOpAlgo::BitmapProbe`] when the
    /// operand has a hub-bitmap row (default 1: probe whenever the
    /// operand is at least as long as the input).
    pub bitmap_ratio: usize,
    pub force: Option<SetOpAlgo>,
}

impl Default for SetOpTuning {
    fn default() -> Self {
        SetOpTuning {
            merge_ratio: 4,
            gallop_ratio: 64,
            bitmap_ratio: 1,
            force: None,
        }
    }
}

impl SetOpTuning {
    /// A tuning that pins every slot to `algo` (bypasses the ratio test).
    pub fn forced(algo: SetOpAlgo) -> Self {
        SetOpTuning {
            force: Some(algo),
            ..SetOpTuning::default()
        }
    }
}

/// Picks the membership algorithm for one slot from the input/operand
/// size ratio. The exact crossovers, with `|A| = input_len` and
/// `|B| = operand_len` (asserted verbatim by the table-driven test
/// `choose_algo_crossovers_match_docs`):
///
/// * `force` set: that algorithm, unconditionally. Prefer
///   [`choose_algo_hub`] for the bitmap variants — it degrades a forced
///   bitmap choice to what the available rows actually support.
/// * `|B| ≤ merge_ratio · |A|` → [`SetOpAlgo::Merge`]. The bound is
///   **inclusive**: with the default `merge_ratio = 4`, `(100, 400)`
///   merges and `(100, 401)` binary-searches.
/// * `|B| ≥ gallop_ratio · |A|` → [`SetOpAlgo::Gallop`], also inclusive:
///   with the default `gallop_ratio = 64`, `(100, 6399)` binary-searches
///   and `(100, 6400)` gallops.
/// * otherwise → [`SetOpAlgo::BinarySearch`].
///
/// Products saturate, so a ratio of `usize::MAX` disables its rule for
/// any `|A| ≥ 1`. An empty input (`|A| = 0`) classifies as `Merge` when
/// `|B| = 0` and `Gallop` otherwise — vacuous either way, since nothing
/// streams.
#[inline]
pub fn choose_algo(input_len: usize, operand_len: usize, t: SetOpTuning) -> SetOpAlgo {
    if let Some(f) = t.force {
        return f;
    }
    if operand_len <= input_len.saturating_mul(t.merge_ratio) {
        SetOpAlgo::Merge
    } else if operand_len >= input_len.saturating_mul(t.gallop_ratio) {
        SetOpAlgo::Gallop
    } else {
        SetOpAlgo::BinarySearch
    }
}

/// [`choose_algo`] extended with the hub-bitmap paths. `stride_words` is
/// the bitmap row length in words; `has_input_bits` / `has_operand_bits`
/// say which side of the op has a row available. Exact rules (asserted by
/// `choose_algo_hub_crossovers_match_docs`):
///
/// * A forced bitmap algorithm degrades to what the rows support:
///   [`SetOpAlgo::BitmapMerge`] needs both rows, falling back to
///   [`SetOpAlgo::BitmapProbe`] with only an operand row and to the
///   classic ladder (force cleared) with neither; a forced `BitmapProbe`
///   needs an operand row. Forced classic algorithms pass through.
/// * Both rows present and `stride_words ≤ |A| + |B|` → `BitmapMerge`:
///   word-ANDing the rows touches no more words than the lists have
///   elements.
/// * Operand row present and `|B| ≥ bitmap_ratio · |A|` (inclusive,
///   saturating) → `BitmapProbe`.
/// * Otherwise → the classic [`choose_algo`] ladder.
pub fn choose_algo_hub(
    input_len: usize,
    operand_len: usize,
    stride_words: usize,
    has_input_bits: bool,
    has_operand_bits: bool,
    t: SetOpTuning,
) -> SetOpAlgo {
    if let Some(f) = t.force {
        return match f {
            SetOpAlgo::BitmapMerge if has_input_bits && has_operand_bits => f,
            SetOpAlgo::BitmapMerge | SetOpAlgo::BitmapProbe => {
                if has_operand_bits {
                    SetOpAlgo::BitmapProbe
                } else {
                    choose_algo(input_len, operand_len, SetOpTuning { force: None, ..t })
                }
            }
            _ => f,
        };
    }
    if has_input_bits && has_operand_bits && stride_words <= input_len + operand_len {
        SetOpAlgo::BitmapMerge
    } else if has_operand_bits && operand_len >= input_len.saturating_mul(t.bitmap_ratio) {
        SetOpAlgo::BitmapProbe
    } else {
        choose_algo(input_len, operand_len, t)
    }
}

/// First index `i ≥ lo` with `ops[i] ≥ value`, found by exponential
/// probing from `lo` followed by binary search inside the bracket.
/// Amortized `O(log gap)` across a monotone scan.
#[inline]
fn gallop_to(ops: &[VertexId], lo: usize, value: VertexId) -> usize {
    let n = ops.len();
    if lo >= n || ops[lo] >= value {
        return lo;
    }
    // Invariant: ops[base] < value; limit is exclusive upper bound.
    let mut step = 1usize;
    let mut base = lo;
    let mut limit = n;
    while base + step < n {
        if ops[base + step] < value {
            base += step;
            step <<= 1;
        } else {
            limit = base + step;
            break;
        }
    }
    base + 1 + ops[base + 1..limit].partition_point(|&x| x < value)
}

/// Copies `sources[u]` into `outs[u]` keeping only vertices admitted by
/// `mask`, for all slots in one combined lane stream.
pub fn materialize_base(
    warp: &mut Warp,
    g: &Graph,
    sources: &[&[VertexId]],
    mask: LabelMask,
    outs: &mut [Vec<VertexId>],
) {
    debug_assert_eq!(sources.len(), outs.len());
    materialize_base_into(warp, g, sources, mask, outs)
}

/// [`materialize_base`] streaming into any [`SetSink`].
pub fn materialize_base_into<S: SetSink + ?Sized>(
    warp: &mut Warp,
    g: &Graph,
    sources: &[&[VertexId]],
    mask: LabelMask,
    out: &mut S,
) {
    for (u, src) in sources.iter().enumerate() {
        out.begin(u, src.len());
    }
    if mask.is_all() {
        // Unfiltered copy: move the data with one block copy per slot and
        // replay the stream's wave accounting verbatim — the per-element
        // closure below touches no warp state, so metrics are identical.
        for (u, src) in sources.iter().enumerate() {
            out.extend(u, src);
        }
        stream_accounting(warp, sources);
        return;
    }
    stream_slots(warp, sources, |_warp, slot, value| {
        if mask.allows(g.label(value)) {
            out.push(slot, value);
        }
    });
}

/// Computes `outs[u] = inputs[u] (∩ | −) operands[u]` filtered by `mask`,
/// for all slots in one combined lane stream, with default adaptive
/// tuning. Inputs and operands must be sorted ascending; outputs are
/// sorted ascending.
pub fn apply_op(
    warp: &mut Warp,
    g: &Graph,
    inputs: &[&[VertexId]],
    operands: &[&[VertexId]],
    kind: OpKind,
    mask: LabelMask,
    outs: &mut [Vec<VertexId>],
) {
    debug_assert_eq!(inputs.len(), outs.len());
    apply_op_into(
        warp,
        g,
        inputs,
        operands,
        kind,
        mask,
        SetOpTuning::default(),
        outs,
    )
}

/// [`apply_op`] streaming into any [`SetSink`], with explicit tuning.
///
/// The algorithm choice is per slot and purely host-side: wave, scan,
/// ballot, and survivor-rank accounting are identical across the three
/// paths (the simulated probe costs one lane instruction either way), so
/// simulator metrics are bit-identical regardless of tuning. Without
/// bitmap rows this is exactly [`apply_op_hub_into`] with no rows
/// attached, and it delegates there.
#[allow(clippy::too_many_arguments)]
pub fn apply_op_into<S: SetSink + ?Sized>(
    warp: &mut Warp,
    g: &Graph,
    inputs: &[&[VertexId]],
    operands: &[&[VertexId]],
    kind: OpKind,
    mask: LabelMask,
    tuning: SetOpTuning,
    out: &mut S,
) {
    const NO_BITS: Option<&[u64]> = None;
    let none = [NO_BITS; WARP_SIZE];
    apply_op_hub_into(
        warp,
        g,
        inputs,
        &none[..inputs.len()],
        operands,
        &none[..operands.len()],
        kind,
        mask,
        tuning,
        out,
    )
}

/// [`apply_op_into`] with optional hub-bitmap rows per slot.
///
/// `input_bits[u]` / `operand_bits[u]`, when `Some`, must denote exactly
/// the same vertex set as `inputs[u]` / `operands[u]` (the caller attaches
/// rows from the graph's [`HubBitmapIndex`](stmatch_graph::HubBitmapIndex)
/// only for lists that *are* hub neighborhoods). [`choose_algo_hub`] picks
/// per slot; element-domain slots (everything but `BitmapMerge`) stream
/// together with classic Fig. 8 accounting, and `BitmapMerge` slots stream
/// their words as a separate combined word stream (scan + 32-word waves +
/// ballot), mirroring the element stream one level up.
#[allow(clippy::too_many_arguments)]
pub fn apply_op_hub_into<S: SetSink + ?Sized>(
    warp: &mut Warp,
    g: &Graph,
    inputs: &[&[VertexId]],
    input_bits: &[Option<&[u64]>],
    operands: &[&[VertexId]],
    operand_bits: &[Option<&[u64]>],
    kind: OpKind,
    mask: LabelMask,
    tuning: SetOpTuning,
    out: &mut S,
) {
    debug_assert_eq!(inputs.len(), operands.len());
    debug_assert_eq!(inputs.len(), input_bits.len());
    debug_assert_eq!(inputs.len(), operand_bits.len());
    debug_assert!(inputs.len() <= WARP_SIZE);
    const EMPTY: &[VertexId] = &[];
    let mut algo = [SetOpAlgo::BinarySearch; WARP_SIZE];
    let mut cursor = [0usize; WARP_SIZE];
    // Element-domain slots, compacted so `stream_slots` sees exactly the
    // wave structure the classic path would give these slots alone.
    let mut elem_inputs = [EMPTY; WARP_SIZE];
    let mut elem_map = [0usize; WARP_SIZE];
    let mut n_elem = 0usize;
    let mut any_merge = false;
    for (u, (inp, ops)) in inputs.iter().zip(operands).enumerate() {
        out.begin(u, inp.len());
        let stride = input_bits[u].map_or(usize::MAX, <[u64]>::len);
        algo[u] = choose_algo_hub(
            inp.len(),
            ops.len(),
            stride,
            input_bits[u].is_some(),
            operand_bits[u].is_some(),
            tuning,
        );
        if algo[u] == SetOpAlgo::BitmapMerge {
            any_merge = true;
        } else {
            elem_inputs[n_elem] = inp;
            elem_map[n_elem] = u;
            n_elem += 1;
        }
    }
    stream_slots(warp, &elem_inputs[..n_elem], |warp, ei, value| {
        let slot = elem_map[ei];
        let ops = operands[slot];
        let found = if ops.is_empty() {
            // Empty operand: ∩ drops everything, − keeps everything.
            false
        } else {
            match algo[slot] {
                SetOpAlgo::BinarySearch => ops.binary_search(&value).is_ok(),
                SetOpAlgo::Merge => {
                    let c = &mut cursor[slot];
                    while *c < ops.len() && ops[*c] < value {
                        *c += 1;
                    }
                    *c < ops.len() && ops[*c] == value
                }
                SetOpAlgo::Gallop => {
                    let c = &mut cursor[slot];
                    *c = gallop_to(ops, *c, value);
                    *c < ops.len() && ops[*c] == value
                }
                SetOpAlgo::BitmapProbe => {
                    warp.metrics_mut().bitmap_probe_words += 1;
                    word_probe(
                        operand_bits[slot].expect("probe requires operand bits"),
                        value,
                    )
                }
                SetOpAlgo::BitmapMerge => unreachable!("merge slots stream words, not elements"),
            }
        };
        let keep = match kind {
            OpKind::Intersect => found,
            OpKind::Difference => !found,
        };
        // One extra lane instruction for the label check on labeled runs.
        if keep && (mask.is_all() || mask.allows(g.label(value))) {
            // Output offset = popc of lower survivor lanes (Fig. 8); with
            // in-order lane simulation a push lands at exactly that offset.
            let _ = warp.rank_in_mask(0, 0);
            out.push(slot, value);
        }
    });
    if any_merge {
        merge_bitmap_slots(warp, g, input_bits, operand_bits, &algo, kind, mask, out);
    }
}

/// Streams the `BitmapMerge` slots of one combined op as a word stream:
/// a prefix scan over word counts (when more than one merge slot), waves
/// of 32 words with low-bit-contiguous active masks, one ballot per wave,
/// survivors extracted in ascending order from each result word.
#[allow(clippy::too_many_arguments)]
fn merge_bitmap_slots<S: SetSink + ?Sized>(
    warp: &mut Warp,
    g: &Graph,
    input_bits: &[Option<&[u64]>],
    operand_bits: &[Option<&[u64]>],
    algo: &[SetOpAlgo; WARP_SIZE],
    kind: OpKind,
    mask: LabelMask,
    out: &mut S,
) {
    const NO_WORDS: &[u64] = &[];
    let mut slot_of = [0usize; WARP_SIZE];
    let mut a_rows = [NO_WORDS; WARP_SIZE];
    let mut b_rows = [NO_WORDS; WARP_SIZE];
    let mut n = 0usize;
    let mut total = 0usize;
    for u in 0..input_bits.len() {
        if algo[u] == SetOpAlgo::BitmapMerge {
            slot_of[n] = u;
            a_rows[n] = input_bits[u].expect("BitmapMerge requires input bits");
            b_rows[n] = operand_bits[u].expect("BitmapMerge requires operand bits");
            debug_assert_eq!(a_rows[n].len(), b_rows[n].len());
            total += a_rows[n].len();
            n += 1;
        }
    }
    if total == 0 {
        return;
    }
    if n > 1 {
        let mut sizes = [0u32; WARP_SIZE];
        for (s, row) in a_rows.iter().enumerate().take(n) {
            sizes[s] = row.len() as u32;
        }
        let _ = warp.exclusive_scan(&mut sizes);
    }
    let waves = total.div_ceil(WARP_SIZE);
    let mut si = 0usize;
    let mut w = 0usize;
    for wave in 0..waves {
        let in_wave = (total - wave * WARP_SIZE).min(WARP_SIZE);
        let active = if in_wave == WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << in_wave) - 1
        };
        // One word AND (or ANDN) per lane.
        warp.wave(active, |_| {});
        for _ in 0..in_wave {
            while w >= a_rows[si].len() {
                si += 1;
                w = 0;
            }
            let slot = slot_of[si];
            let mut c = match kind {
                OpKind::Intersect => a_rows[si][w] & b_rows[si][w],
                OpKind::Difference => a_rows[si][w] & !b_rows[si][w],
            };
            out.put_word(slot, w, c);
            while c != 0 {
                let bit = c.trailing_zeros();
                c &= c - 1;
                let value = (w as VertexId) * 64 + bit;
                if mask.is_all() || mask.allows(g.label(value)) {
                    let _ = warp.rank_in_mask(0, 0);
                    out.push(slot, value);
                }
            }
            w += 1;
        }
        let _ = warp.ballot(active);
        warp.metrics_mut().bitmap_merge_waves += 1;
    }
    warp.metrics_mut().bitmap_merge_words += total as u64;
    if mask.is_all() {
        for &slot in slot_of.iter().take(n) {
            out.seal_bits(slot);
        }
    }
}

/// Fuses a whole op chain of one slot in the bitmap domain: the
/// accumulator starts as `base_bits`, each non-final op word-ANDs (or
/// AND-NOTs) an operand row into the ping/pong scratch, and the final op
/// streams its result words once, extracting survivors ascending into
/// `out` under `mask`. Used by the kernel when a slot's base vertex *and*
/// every chain operand are hubs.
///
/// Accounting contract (DESIGN.md §4f): every op — including the final
/// extraction — costs `ceil(stride/32)` word waves (one SIMT instruction
/// plus one ballot each, `stride` active lanes total), and each survivor
/// costs one `rank_in_mask` compaction, mirroring the element stream.
#[allow(clippy::too_many_arguments)]
pub fn apply_chain_bits_into<S: SetSink + ?Sized>(
    warp: &mut Warp,
    g: &Graph,
    slot: usize,
    base_bits: &[u64],
    ops: &[(OpKind, &[u64])],
    mask: LabelMask,
    ping: &mut [u64],
    pong: &mut [u64],
    out: &mut S,
) {
    assert!(!ops.is_empty(), "a fused chain needs at least one operand");
    let stride = base_bits.len();
    debug_assert!(ping.len() >= stride && pong.len() >= stride);
    out.begin(slot, 0);
    for (i, &(kind, b)) in ops.iter().enumerate() {
        debug_assert_eq!(b.len(), stride);
        let is_last = i + 1 == ops.len();
        // Source row: the base for op 0, then whichever scratch buffer the
        // previous op wrote (ping, pong, ping, … alternating). Source and
        // destination are always distinct buffers.
        let (src, mut dst): (&[u64], Option<&mut [u64]>) = if i == 0 {
            (base_bits, (!is_last).then_some(&mut *ping))
        } else if i % 2 == 1 {
            (&*ping, (!is_last).then_some(&mut *pong))
        } else {
            (&*pong, (!is_last).then_some(&mut *ping))
        };
        let waves = stride.div_ceil(WARP_SIZE);
        let mut w = 0usize;
        for wave in 0..waves {
            let in_wave = (stride - wave * WARP_SIZE).min(WARP_SIZE);
            let active = if in_wave == WARP_SIZE {
                u32::MAX
            } else {
                (1u32 << in_wave) - 1
            };
            warp.wave(active, |_| {});
            for _ in 0..in_wave {
                let c = match kind {
                    OpKind::Intersect => src[w] & b[w],
                    OpKind::Difference => src[w] & !b[w],
                };
                match &mut dst {
                    Some(d) => d[w] = c,
                    None => {
                        out.put_word(slot, w, c);
                        let mut c = c;
                        while c != 0 {
                            let bit = c.trailing_zeros();
                            c &= c - 1;
                            let value = (w as VertexId) * 64 + bit;
                            if mask.is_all() || mask.allows(g.label(value)) {
                                let _ = warp.rank_in_mask(0, 0);
                                out.push(slot, value);
                            }
                        }
                    }
                }
                w += 1;
            }
            let _ = warp.ballot(active);
            warp.metrics_mut().bitmap_merge_waves += 1;
        }
        warp.metrics_mut().bitmap_merge_words += stride as u64;
    }
    if mask.is_all() {
        out.seal_bits(slot);
    }
}

/// Issues exactly the waves [`stream_slots`] would issue for `slots` —
/// size prefix-scan, full waves, one ballot per wave — without visiting
/// the elements. Used by fast paths that move data with block copies but
/// must keep the simulated accounting identical.
fn stream_accounting(warp: &mut Warp, slots: &[&[VertexId]]) {
    assert!(
        slots.len() <= WARP_SIZE,
        "combined set op over {} slots exceeds the warp width {}",
        slots.len(),
        WARP_SIZE
    );
    let total: usize = slots.iter().map(|s| s.len()).sum();
    if total == 0 {
        return;
    }
    if slots.len() > 1 {
        let mut sizes = [0u32; WARP_SIZE];
        for (i, s) in slots.iter().enumerate() {
            sizes[i] = s.len() as u32;
        }
        let _ = warp.exclusive_scan(&mut sizes);
    }
    let waves = total.div_ceil(WARP_SIZE);
    for wave in 0..waves {
        let in_wave = (total - wave * WARP_SIZE).min(WARP_SIZE);
        let active = if in_wave == WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << in_wave) - 1
        };
        warp.wave(active, |_| {});
        let _ = warp.ballot(active);
    }
}

/// Streams the concatenated elements of all slots through SIMT waves,
/// invoking `f(warp, slot, value)` per element, with Fig. 8 accounting:
/// a size prefix-scan per batch, full waves of 32 lanes, and one ballot
/// per wave for the output compaction. Within a slot, elements stream in
/// ascending order (what makes monotone-cursor probes correct).
fn stream_slots<F: FnMut(&mut Warp, usize, VertexId)>(
    warp: &mut Warp,
    slots: &[&[VertexId]],
    mut f: F,
) {
    // The Fig. 8 lane mapping assigns one slot size per scan lane; more
    // slots than lanes would silently drop sizes from the prefix scan.
    // `EngineConfig::validate` bounds unroll at WARP_SIZE for this reason.
    assert!(
        slots.len() <= WARP_SIZE,
        "combined set op over {} slots exceeds the warp width {}",
        slots.len(),
        WARP_SIZE
    );
    let total: usize = slots.iter().map(|s| s.len()).sum();
    if total == 0 {
        return;
    }
    if slots.len() > 1 {
        // size_scan: one warp scan maps lanes to (set_idx, set_ofs).
        let mut sizes = [0u32; WARP_SIZE];
        for (i, s) in slots.iter().enumerate() {
            sizes[i] = s.len() as u32;
        }
        let _ = warp.exclusive_scan(&mut sizes);
    }
    let waves = total.div_ceil(WARP_SIZE);
    let mut slot = 0usize;
    let mut ofs = 0usize;
    for wave in 0..waves {
        let in_wave = (total - wave * WARP_SIZE).min(WARP_SIZE);
        let active = if in_wave == WARP_SIZE {
            u32::MAX
        } else {
            (1u32 << in_wave) - 1
        };
        // Issue the wave: per-lane membership probe / copy.
        warp.wave(active, |_| {});
        for _ in 0..in_wave {
            while ofs >= slots[slot].len() {
                slot += 1;
                ofs = 0;
            }
            let value = slots[slot][ofs];
            f(warp, slot, value);
            ofs += 1;
        }
        // bsearch_res ballot for output compaction.
        let _ = warp.ballot(active);
    }
}

/// Counts elements of `set` that satisfy a per-element predicate, as one
/// warp-wide pass (used at the last level, where candidates are counted
/// rather than iterated).
pub fn count_with<F: FnMut(VertexId) -> bool>(
    warp: &mut Warp,
    set: &[VertexId],
    mut pred: F,
) -> u64 {
    let mut count = 0u64;
    warp.simt_for(set.len(), |i| {
        if pred(set[i]) {
            count += 1;
        }
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_graph::gen;

    // Helper that runs `f` on a real warp inside a 1-warp grid launch and
    // returns the warp's metrics.
    fn with_warp<F: Fn(&mut Warp) + Sync>(f: F) -> stmatch_gpusim::WarpMetrics {
        let grid = stmatch_gpusim::Grid::new(stmatch_gpusim::GridConfig {
            num_blocks: 1,
            warps_per_block: 1,
            shared_mem_per_block: 0,
        })
        .unwrap();
        let m = grid.launch(|w| f(w));
        m.warps[0]
    }

    #[test]
    fn intersect_matches_reference() {
        let g = gen::complete(2); // labels unused (mask ALL)
        let a: Vec<VertexId> = vec![1, 3, 5, 7, 9, 11];
        let b: Vec<VertexId> = vec![3, 4, 5, 6, 7];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&b],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
            assert_eq!(outs[0], vec![3, 5, 7]);
        });
    }

    #[test]
    fn difference_matches_reference() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = vec![1, 3, 5, 7];
        let b: Vec<VertexId> = vec![3, 7, 8];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&b],
                OpKind::Difference,
                LabelMask::ALL,
                &mut outs,
            );
            assert_eq!(outs[0], vec![1, 5]);
        });
    }

    #[test]
    fn combined_slots_equal_individual_ops() {
        let g = gen::complete(2);
        let ins: Vec<Vec<VertexId>> = vec![vec![1, 2, 3], vec![10, 20, 30, 40], vec![5]];
        let ops: Vec<Vec<VertexId>> = vec![vec![2, 3, 4], vec![20, 40], vec![6]];
        let _ = with_warp(move |w| {
            let in_refs: Vec<&[VertexId]> = ins.iter().map(|v| v.as_slice()).collect();
            let op_refs: Vec<&[VertexId]> = ops.iter().map(|v| v.as_slice()).collect();
            let mut combined = vec![Vec::new(), Vec::new(), Vec::new()];
            apply_op(
                w,
                &g,
                &in_refs,
                &op_refs,
                OpKind::Intersect,
                LabelMask::ALL,
                &mut combined,
            );
            assert_eq!(combined[0], vec![2, 3]);
            assert_eq!(combined[1], vec![20, 40]);
            assert!(combined[2].is_empty());
        });
    }

    #[test]
    fn combined_ops_issue_fewer_waves() {
        // Eight 4-element sets: one-at-a-time needs 8 waves of 4/32 active;
        // combined needs ceil(32/32) = 1 wave of 32/32.
        let g = gen::complete(2);
        let sets: Vec<Vec<VertexId>> = (0..8).map(|s| vec![s, s + 10, s + 20, s + 30]).collect();
        let op: Vec<VertexId> = (0..64).collect();

        let m_single = with_warp(|w| {
            for s in &sets {
                let mut outs = vec![Vec::new()];
                apply_op(
                    w,
                    &g,
                    &[s.as_slice()],
                    &[op.as_slice()],
                    OpKind::Intersect,
                    LabelMask::ALL,
                    &mut outs,
                );
            }
        });
        let m_combined = with_warp(|w| {
            let in_refs: Vec<&[VertexId]> = sets.iter().map(|v| v.as_slice()).collect();
            let op_refs: Vec<&[VertexId]> = vec![op.as_slice(); 8];
            let mut outs: Vec<Vec<VertexId>> = vec![Vec::new(); 8];
            apply_op(
                w,
                &g,
                &in_refs,
                &op_refs,
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
        });
        assert!(
            m_combined.lane_utilization() > m_single.lane_utilization(),
            "combined {} vs single {}",
            m_combined.lane_utilization(),
            m_single.lane_utilization()
        );
    }

    #[test]
    fn base_materialization_filters_labels() {
        let g = gen::complete(6).relabeled(vec![0, 1, 0, 1, 0, 1]);
        let src: Vec<VertexId> = vec![0, 1, 2, 3, 4, 5];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            materialize_base(w, &g, &[&src], LabelMask::single(1), &mut outs);
            assert_eq!(outs[0], vec![1, 3, 5]);
        });
    }

    #[test]
    fn outputs_stay_sorted() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = (0..100).collect();
        let b: Vec<VertexId> = (0..100).filter(|v| v % 3 == 0).collect();
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&b],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
            assert!(outs[0].windows(2).all(|p| p[0] < p[1]));
            assert_eq!(outs[0].len(), 34);
        });
    }

    #[test]
    fn count_with_accounts_lanes() {
        let set: Vec<VertexId> = (0..40).collect();
        let m = with_warp(move |w| {
            let c = count_with(w, &set, |v| v % 2 == 0);
            assert_eq!(c, 20);
        });
        assert_eq!(m.issued_lane_slots, 64);
        assert_eq!(m.active_lane_slots, 40);
    }

    #[test]
    fn choose_algo_crossovers_match_docs() {
        // Table-driven mirror of the `choose_algo` rustdoc: every row is a
        // crossover the docs promise. Tuning edits that move a boundary
        // must update both places.
        use SetOpAlgo::*;
        let t = SetOpTuning::default(); // merge ≤ 4×, gallop ≥ 64×, both inclusive
        const TABLE: &[(usize, usize, SetOpAlgo)] = &[
            (100, 0, Merge),   // |B| = 0 ≤ 4·|A|
            (100, 100, Merge), // equal sizes merge
            (100, 399, Merge), // just under the merge bound
            (100, 400, Merge), // inclusive upper merge crossover
            (100, 401, BinarySearch),
            (100, 6399, BinarySearch), // just under the gallop bound
            (100, 6400, Gallop),       // inclusive lower gallop crossover
            (100, 6401, Gallop),
            (1, 4, Merge), // crossovers scale with |A|
            (1, 5, BinarySearch),
            (1, 64, Gallop),
            (0, 0, Merge), // empty input: vacuous classifications
            (0, 1, Gallop),
        ];
        for &(a, b, want) in TABLE {
            assert_eq!(choose_algo(a, b, t), want, "choose_algo({a}, {b})");
        }
        // Saturating products disable a rule rather than wrapping.
        let never_gallop = SetOpTuning {
            gallop_ratio: usize::MAX,
            ..t
        };
        assert_eq!(choose_algo(2, usize::MAX - 1, never_gallop), BinarySearch);
        // Forces pass through verbatim.
        assert_eq!(choose_algo(1, 1_000_000, SetOpTuning::forced(Merge)), Merge);
    }

    #[test]
    fn choose_algo_hub_crossovers_match_docs() {
        use SetOpAlgo::*;
        let t = SetOpTuning::default(); // bitmap_ratio = 1
                                        // (|A|, |B|, stride, in_bits, op_bits, expected)
        const TABLE: &[(usize, usize, usize, bool, bool, SetOpAlgo)] = &[
            // Both rows: merge iff stride ≤ |A| + |B| (inclusive).
            (60, 60, 120, true, true, BitmapMerge),
            (60, 60, 121, true, true, BitmapProbe), // stride too wide; probe still wins
            // Operand row only: probe iff |B| ≥ bitmap_ratio·|A| (inclusive).
            (50, 50, 10, false, true, BitmapProbe),
            (50, 49, 10, false, true, Merge), // |B| < |A| falls to the classic ladder
            // No rows: the classic ladder verbatim.
            (100, 400, 10, false, false, Merge),
            (100, 401, 10, false, false, BinarySearch),
            (100, 6400, 10, false, false, Gallop),
            // Input row alone never helps (the probe needs the operand).
            (50, 49, 2, true, false, Merge),
        ];
        for &(a, b, s, ib, ob, want) in TABLE {
            assert_eq!(
                choose_algo_hub(a, b, s, ib, ob, t),
                want,
                "choose_algo_hub({a}, {b}, {s}, {ib}, {ob})"
            );
        }
        // Forced bitmap choices degrade to what the rows support.
        let fm = SetOpTuning::forced(BitmapMerge);
        assert_eq!(choose_algo_hub(9, 9, 500, true, true, fm), BitmapMerge);
        assert_eq!(choose_algo_hub(9, 9, 500, false, true, fm), BitmapProbe);
        assert_eq!(choose_algo_hub(9, 9, 500, false, false, fm), Merge);
        let fp = SetOpTuning::forced(BitmapProbe);
        assert_eq!(choose_algo_hub(9, 9, 1, true, true, fp), BitmapProbe);
        assert_eq!(choose_algo_hub(9, 900, 1, true, false, fp), Gallop);
        // Forced classic algorithms ignore available rows.
        let fg = SetOpTuning::forced(Gallop);
        assert_eq!(choose_algo_hub(9, 9, 1, true, true, fg), Gallop);
    }

    #[test]
    fn forced_algos_agree_and_keep_metrics_identical() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = (0..200).step_by(3).collect();
        let b: Vec<VertexId> = (0..200).step_by(2).collect();
        let mut results: Vec<(Vec<VertexId>, u64, u64)> = Vec::new();
        for algo in [SetOpAlgo::BinarySearch, SetOpAlgo::Merge, SetOpAlgo::Gallop] {
            for kind in [OpKind::Intersect, OpKind::Difference] {
                let (a, b, g) = (a.clone(), b.clone(), g.clone());
                let out = std::sync::Mutex::new(Vec::new());
                let m = with_warp(|w| {
                    let mut outs = vec![Vec::new()];
                    apply_op_into(
                        w,
                        &g,
                        &[&a],
                        &[&b],
                        kind,
                        LabelMask::ALL,
                        SetOpTuning::forced(algo),
                        &mut outs[..],
                    );
                    *out.lock().unwrap() = outs.remove(0);
                });
                results.push((
                    out.into_inner().unwrap(),
                    m.simt_instructions,
                    m.issued_lane_slots,
                ));
            }
        }
        // All three algorithms: same outputs, same simulated cost.
        for pair in results.chunks(2).skip(1) {
            assert_eq!(pair[0], results[0], "intersect path diverged");
            assert_eq!(pair[1], results[1], "difference path diverged");
        }
    }

    #[test]
    fn empty_operand_short_circuits_correctly() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = vec![2, 4, 6];
        let _ = with_warp(move |w| {
            let mut outs = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&a],
                &[&[]],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut outs,
            );
            assert!(outs[0].is_empty());
            apply_op(
                w,
                &g,
                &[&a],
                &[&[]],
                OpKind::Difference,
                LabelMask::ALL,
                &mut outs,
            );
            assert_eq!(outs[0], vec![2, 4, 6]);
        });
    }

    #[test]
    fn gallop_to_finds_lower_bounds() {
        let ops: Vec<VertexId> = vec![1, 3, 5, 7, 9, 11, 13];
        assert_eq!(gallop_to(&ops, 0, 0), 0);
        assert_eq!(gallop_to(&ops, 0, 1), 0);
        assert_eq!(gallop_to(&ops, 0, 2), 1);
        assert_eq!(gallop_to(&ops, 0, 13), 6);
        assert_eq!(gallop_to(&ops, 0, 14), 7);
        assert_eq!(gallop_to(&ops, 3, 8), 4);
        assert_eq!(gallop_to(&ops, 7, 99), 7);
    }

    /// Encodes a sorted vertex list as a `stride`-word bitmap row.
    fn bits_of(vals: &[VertexId], stride: usize) -> Vec<u64> {
        let mut bits = vec![0u64; stride];
        for &v in vals {
            bits[(v >> 6) as usize] |= 1u64 << (v & 63);
        }
        bits
    }

    #[test]
    fn bitmap_probe_agrees_and_keeps_metrics_identical() {
        // The probe is an element-stream algorithm: identical outputs AND
        // an identical (simt, issued, active) tuple vs. binary search —
        // only the host cost and the probe counter differ.
        let g = gen::complete(2);
        let a: Vec<VertexId> = (0..200).step_by(3).collect();
        let b: Vec<VertexId> = (0..200).step_by(2).collect();
        let stride = 200usize.div_ceil(64);
        let b_bits = bits_of(&b, stride);
        for kind in [OpKind::Intersect, OpKind::Difference] {
            let mut runs = Vec::new();
            for probe in [false, true] {
                let (a, b, b_bits, g) = (a.clone(), b.clone(), b_bits.clone(), g.clone());
                let out = std::sync::Mutex::new(Vec::new());
                let m = with_warp(|w| {
                    let mut outs = vec![Vec::new()];
                    let tuning = SetOpTuning::forced(if probe {
                        SetOpAlgo::BitmapProbe
                    } else {
                        SetOpAlgo::BinarySearch
                    });
                    let op_bits = if probe { Some(b_bits.as_slice()) } else { None };
                    apply_op_hub_into(
                        w,
                        &g,
                        &[&a],
                        &[None],
                        &[&b],
                        &[op_bits],
                        kind,
                        LabelMask::ALL,
                        tuning,
                        &mut outs[..],
                    );
                    *out.lock().unwrap() = outs.remove(0);
                });
                runs.push((out.into_inner().unwrap(), m));
            }
            let (ref_out, ref_m) = &runs[0];
            let (probe_out, probe_m) = &runs[1];
            assert_eq!(probe_out, ref_out, "{kind:?} probe output diverged");
            assert_eq!(probe_m.simt_instructions, ref_m.simt_instructions);
            assert_eq!(probe_m.issued_lane_slots, ref_m.issued_lane_slots);
            assert_eq!(probe_m.active_lane_slots, ref_m.active_lane_slots);
            assert_eq!(ref_m.bitmap_probe_words, 0);
            assert_eq!(probe_m.bitmap_probe_words, a.len() as u64);
            assert_eq!(probe_m.bitmap_merge_words, 0);
        }
    }

    #[test]
    fn bitmap_merge_agrees_with_classic() {
        let g = gen::complete(2);
        let a: Vec<VertexId> = (0..150).step_by(3).collect();
        let b: Vec<VertexId> = (0..150).step_by(2).collect();
        let stride = 150usize.div_ceil(64);
        let (a_bits, b_bits) = (bits_of(&a, stride), bits_of(&b, stride));
        for kind in [OpKind::Intersect, OpKind::Difference] {
            let (a, b) = (a.clone(), b.clone());
            let (a_bits, b_bits, g) = (a_bits.clone(), b_bits.clone(), g.clone());
            let m = with_warp(move |w| {
                let mut classic = vec![Vec::new()];
                apply_op(w, &g, &[&a], &[&b], kind, LabelMask::ALL, &mut classic);
                let mut merged = [Vec::new()];
                apply_op_hub_into(
                    w,
                    &g,
                    &[&a],
                    &[Some(a_bits.as_slice())],
                    &[&b],
                    &[Some(b_bits.as_slice())],
                    kind,
                    LabelMask::ALL,
                    SetOpTuning::forced(SetOpAlgo::BitmapMerge),
                    &mut merged[..],
                );
                assert_eq!(merged[0], classic[0], "{kind:?} merge diverged");
                assert!(merged[0].windows(2).all(|p| p[0] < p[1]));
            });
            assert!(m.bitmap_merge_words > 0);
        }
    }

    #[test]
    fn bitmap_merge_wave_accounting_is_exact() {
        // Two merge slots over a 130-vertex universe: stride 3 each, so
        // the combined word stream is one scan (5 instr, 160 issued+active)
        // plus one 6-word wave (1 instr, 32 issued, 6 active) plus one
        // ballot (1 instr) — 7 SIMT instructions total.
        let g = gen::complete(2);
        let a: Vec<VertexId> = vec![1, 64, 129];
        let b: Vec<VertexId> = vec![1, 65, 129];
        let stride = 130usize.div_ceil(64);
        let (a_bits, b_bits) = (bits_of(&a, stride), bits_of(&b, stride));
        let m = with_warp(move |w| {
            let mut outs = [Vec::new(), Vec::new()];
            apply_op_hub_into(
                w,
                &g,
                &[&a, &a],
                &[Some(a_bits.as_slice()), Some(a_bits.as_slice())],
                &[&b, &b],
                &[Some(b_bits.as_slice()), Some(b_bits.as_slice())],
                OpKind::Intersect,
                LabelMask::ALL,
                SetOpTuning::forced(SetOpAlgo::BitmapMerge),
                &mut outs[..],
            );
            assert_eq!(outs[0], vec![1, 129]);
            assert_eq!(outs[1], vec![1, 129]);
        });
        assert_eq!(m.simt_instructions, 7);
        assert_eq!(m.issued_lane_slots, 5 * 32 + 32);
        assert_eq!(m.active_lane_slots, 5 * 32 + 6);
        assert_eq!(m.bitmap_merge_words, 6);
        assert_eq!(m.bitmap_merge_waves, 1);
    }

    #[test]
    fn mixed_element_and_merge_slots_agree() {
        // Slot 0 has rows on both sides (auto → BitmapMerge), slot 1 has
        // none (classic); outputs must match per-slot classic results.
        let g = gen::complete(2);
        let a0: Vec<VertexId> = (0..120).step_by(2).collect();
        let b0: Vec<VertexId> = (0..120).step_by(5).collect();
        let a1: Vec<VertexId> = vec![3, 9, 27, 81];
        let b1: Vec<VertexId> = vec![9, 81, 100];
        let stride = 120usize.div_ceil(64);
        let (a0_bits, b0_bits) = (bits_of(&a0, stride), bits_of(&b0, stride));
        let _ = with_warp(move |w| {
            let mut classic = vec![Vec::new(), Vec::new()];
            apply_op(
                w,
                &g,
                &[&a0, &a1],
                &[&b0, &b1],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut classic,
            );
            let mut hub = vec![Vec::new(), Vec::new()];
            apply_op_hub_into(
                w,
                &g,
                &[&a0, &a1],
                &[Some(a0_bits.as_slice()), None],
                &[&b0, &b1],
                &[Some(b0_bits.as_slice()), None],
                OpKind::Intersect,
                LabelMask::ALL,
                SetOpTuning::default(),
                &mut hub[..],
            );
            assert_eq!(hub, classic);
        });
    }

    #[test]
    fn bitmap_merge_honors_label_masks() {
        let n = 80usize;
        let labels: Vec<u32> = (0..n as u32).map(|v| v % 2).collect();
        let g = gen::complete(n).relabeled(labels);
        let a: Vec<VertexId> = (0..n as VertexId).collect();
        let b: Vec<VertexId> = (0..n as VertexId).step_by(3).collect();
        let stride = n.div_ceil(64);
        let (a_bits, b_bits) = (bits_of(&a, stride), bits_of(&b, stride));
        let _ = with_warp(move |w| {
            let mut outs = [Vec::new()];
            apply_op_hub_into(
                w,
                &g,
                &[&a],
                &[Some(a_bits.as_slice())],
                &[&b],
                &[Some(b_bits.as_slice())],
                OpKind::Intersect,
                LabelMask::single(1),
                SetOpTuning::forced(SetOpAlgo::BitmapMerge),
                &mut outs[..],
            );
            let want: Vec<VertexId> = b.iter().copied().filter(|&v| v % 2 == 1).collect();
            assert_eq!(outs[0], want);
        });
    }

    #[test]
    fn chain_bits_matches_sequential_classic_ops() {
        // base ∩ b1 ∖ b2 ∩ b3, fused in the bitmap domain, vs. the same
        // chain run through the classic element path one op at a time.
        let g = gen::complete(2);
        let n = 200usize;
        let base: Vec<VertexId> = (0..n as VertexId).step_by(2).collect();
        let b1: Vec<VertexId> = (0..n as VertexId).step_by(3).collect();
        let b2: Vec<VertexId> = (0..n as VertexId).step_by(5).collect();
        let b3: Vec<VertexId> = (0..n as VertexId).step_by(4).collect();
        let stride = n.div_ceil(64);
        let rows: Vec<Vec<u64>> = [&base, &b1, &b2, &b3]
            .iter()
            .map(|s| bits_of(s, stride))
            .collect();
        let _ = with_warp(move |w| {
            let mut t1 = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&base],
                &[&b1],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut t1,
            );
            let mut t2 = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&t1[0]],
                &[&b2],
                OpKind::Difference,
                LabelMask::ALL,
                &mut t2,
            );
            let mut want = vec![Vec::new()];
            apply_op(
                w,
                &g,
                &[&t2[0]],
                &[&b3],
                OpKind::Intersect,
                LabelMask::ALL,
                &mut want,
            );

            let mut ping = vec![0u64; stride];
            let mut pong = vec![0u64; stride];
            let mut outs = [Vec::new()];
            let before = w.metrics_mut().bitmap_merge_waves;
            apply_chain_bits_into(
                w,
                &g,
                0,
                &rows[0],
                &[
                    (OpKind::Intersect, rows[1].as_slice()),
                    (OpKind::Difference, rows[2].as_slice()),
                    (OpKind::Intersect, rows[3].as_slice()),
                ],
                LabelMask::ALL,
                &mut ping,
                &mut pong,
                &mut outs[..],
            );
            assert_eq!(outs[0], want[0]);
            // 3 ops × ceil(4/32) = 3 word waves, 12 words.
            assert_eq!(w.metrics_mut().bitmap_merge_waves - before, 3);
        });
    }
}
