//! The STMatch engine: launch planning, the per-warp driver loop, and the
//! public matching API.
//!
//! ## Fault-tolerant execution
//!
//! The engine survives three failure classes without giving up the run
//! (see DESIGN.md §4d):
//!
//! * **Warp deaths** (injected via [`FaultPlan`] or real panics): every
//!   warp body runs under its own `catch_unwind`; a dying warp's
//!   unfinished work is reclaimed from its kernel ([`WarpKernel::
//!   reclaim_on_death`]) and requeued on the [`Board`] for survivors, so
//!   counts stay exact. Deaths are recorded in a [`FaultReport`] on the
//!   outcome.
//! * **Stranded work** (all warps of a launch died, or naive mode had no
//!   idle phase left to absorb a late requeue): bounded *salvage
//!   relaunches* drain leftover payloads and unclaimed chunks with fault
//!   injection disabled.
//! * **Launch-planning failures** (shared-memory overflow, global-memory
//!   OOM): a bounded retry loop walks the count-invariant degradation
//!   ladder of [`recover::degrade`] and records each rung taken in
//!   [`MatchOutcome::downgrades`].

use crate::compile::CompiledPlan;
use crate::config::EngineConfig;
use crate::fault::{FaultPlan, FaultReport, WarpDeath};
use crate::kernel::WarpKernel;
use crate::pool::{ArenaPool, WarmSlot};
use crate::recover::{self, DowngradeStep};
use crate::steal::{Board, ShardRail, StealPayload};
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;
use stmatch_gpusim::{Grid, GridMetrics, LaunchError, MemoryBudget, SharedBudget};
use stmatch_graph::{Graph, HubBitmapIndex, VertexId};
use stmatch_pattern::{MatchPlan, Pattern, PlanOptions};

/// Result of an enumeration run: the embeddings plus the usual outcome.
#[derive(Clone, Debug)]
pub struct Enumeration {
    /// One entry per match, indexed by pattern vertex: `embeddings[i][u]`
    /// is the data vertex matched to pattern vertex `u`. Sorted
    /// lexicographically for run-to-run determinism.
    pub embeddings: Vec<Vec<VertexId>>,
    /// Metrics of the run.
    pub outcome: MatchOutcome,
}

/// Result of one matching run.
#[derive(Clone, Debug)]
pub struct MatchOutcome {
    /// Number of matches (subgraphs with symmetry breaking on, embeddings
    /// otherwise).
    pub count: u64,
    /// Execution metrics (lane utilization, steals, load balance, wall
    /// time).
    pub metrics: GridMetrics,
    /// Shared-memory bytes reserved per threadblock at launch.
    pub shared_bytes_per_block: usize,
    /// Global-memory bytes reserved for the warp stacks (the paper's fixed
    /// `NUM_SETS × UNROLL × MAX_DEGREE × NUM_WARP` budget).
    pub stack_bytes: usize,
    /// The compiled plan's set count (`NUM_SETS`).
    pub num_sets: usize,
    /// True when the run was cut short by [`Engine::with_timeout`]; the
    /// count is then a partial lower bound (the paper's '−' cells).
    pub timed_out: bool,
    /// What the fault-tolerance layer observed: warp deaths, requeued
    /// work, salvage relaunches. `None` for clean runs; when present and
    /// [`FaultReport::fully_recovered`], the count is still exact.
    pub fault: Option<FaultReport>,
    /// Degradation-ladder rungs taken to make the launch fit its budgets
    /// (empty for runs that launched at the configured settings).
    pub downgrades: Vec<DowngradeStep>,
    /// Candidate-list slab overflows that spilled to the heap (see
    /// `arena`); nonzero after slab-shrinking downgrades on dense graphs.
    pub spill_events: u64,
    /// Largest per-warp high-water mark of live candidate cells across
    /// the run's stack arenas (see `arena`). With static verification on,
    /// debug builds audit this against the certificate's
    /// `ResourceCert::peak_cells` bound.
    pub peak_slab_cells: u64,
    /// The execution tier the run's compiled plan sat at when the launch
    /// completed (`0` = bytecode dispatch, `1` = shape-specialized), or
    /// `None` when plan compilation was off — or routed around, as when
    /// hub-bitmap acceleration owns the set operations. A run that tiers
    /// up mid-launch reports the *final* tier.
    pub served_tier: Option<u8>,
    /// The half-open range of level-0 *virtual* indices this run never
    /// claimed, in the run's own index space (strided for partitioned
    /// runs). `Some` only when the run stopped early (`timed_out`), so
    /// partial counts are auditable: the caller knows exactly which slice
    /// of the outermost loop the count omits.
    pub l0_uncovered: Option<(usize, usize)>,
}

impl MatchOutcome {
    /// Wall-clock milliseconds of the launch.
    pub fn elapsed_ms(&self) -> f64 {
        self.metrics.elapsed_nanos as f64 / 1e6
    }

    /// Simulated GPU time: the maximum SIMT instruction count over all
    /// warps. On hardware the grid finishes when its slowest warp finishes;
    /// this deterministic proxy makes load-balance effects measurable on
    /// any host (see DESIGN.md §1, "What time means here").
    pub fn simulated_cycles(&self) -> u64 {
        self.metrics
            .warps
            .iter()
            .map(|w| w.simt_instructions)
            .max()
            .unwrap_or(0)
    }

    /// Total SIMT instructions across warps (the work metric that code
    /// motion and unrolling reduce).
    pub fn total_instructions(&self) -> u64 {
        self.metrics.total().simt_instructions
    }
}

/// The STMatch matching engine.
///
/// ```
/// use stmatch_core::{Engine, EngineConfig};
/// use stmatch_graph::gen;
/// use stmatch_pattern::catalog;
///
/// let graph = gen::complete(6);
/// let engine = Engine::new(EngineConfig::default());
/// let outcome = engine.run(&graph, &catalog::triangle()).unwrap();
/// assert_eq!(outcome.count, 20); // C(6,3) triangles
/// ```
pub struct Engine {
    cfg: EngineConfig,
    memory: MemoryBudget,
    timeout: Option<std::time::Duration>,
    faults: Option<FaultPlan>,
}

/// Everything one (possibly multi-pass) launch produced.
struct LaunchStats {
    metrics: GridMetrics,
    timed_out: bool,
    report: FaultReport,
    spill_events: u64,
    peak_cells: u64,
    /// Next unclaimed level-0 virtual index when the launch ended.
    cursor: usize,
    /// End of the level-0 virtual domain the launch was responsible for.
    domain: usize,
}

/// Per-shard execution context threaded into the launch path by the
/// sharding driver ([`crate::shard`]): the cross-shard work rail, this
/// grid's shard index on it, and the level-0 permutation mapping the
/// rail's virtual indices back to vertex ids. A launch carrying one runs
/// exactly one pass — stranded work goes to the rail (for sibling shards
/// or the driver's recovery rounds) instead of a local salvage relaunch.
pub(crate) struct ShardCtx<'a> {
    /// The rail shared by every shard of the run.
    pub rail: &'a Arc<ShardRail>,
    /// This grid's shard index.
    pub shard: usize,
    /// Level-0 permutation: `map[virtual_index] = vertex_id`.
    pub map: &'a [VertexId],
}

/// Anchored-launch context threaded into the launch path by the delta
/// engine ([`crate::delta`]): the level-0 domain collapses to the two
/// endpoints of one updated data edge (`map`), and level 1 is pinned to
/// the paired endpoint (`pins`, keyed by the matched level-0 vertex so
/// pins survive stealing). Never combined with sharding — an anchored
/// domain of two vertices has nothing to partition.
pub(crate) struct AnchorCtx<'a> {
    /// Level-0 domain: the anchor edge's endpoints, `[a, b]`.
    pub map: &'a [VertexId],
    /// Level-1 pins: `[(a, b), (b, a)]` — one entry per orientation.
    pub pins: &'a [(VertexId, VertexId)],
}

impl Engine {
    /// Creates an engine with the given configuration and an unlimited
    /// device-memory budget.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine {
            cfg,
            memory: MemoryBudget::unlimited(),
            timeout: None,
            faults: None,
        }
    }

    /// Creates an engine with a device-memory budget (bytes).
    pub fn with_memory_budget(cfg: EngineConfig, bytes: usize) -> Engine {
        Engine {
            cfg,
            memory: MemoryBudget::new(bytes),
            timeout: None,
            faults: None,
        }
    }

    /// Sets a wall-clock budget after which the run is cancelled
    /// cooperatively; a cancelled outcome has `timed_out == true` and a
    /// partial count.
    pub fn with_timeout(mut self, timeout: std::time::Duration) -> Engine {
        self.timeout = Some(timeout);
        self
    }

    /// Attaches a deterministic [`FaultPlan`] to every subsequent launch
    /// (testing/chaos engineering; injection is off unless this is
    /// called). Salvage relaunches always run with injection disabled.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Engine {
        self.faults = Some(plan);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The fault plan attached via [`Engine::with_fault_plan`], if any
    /// (the sharding driver re-scopes it per shard grid).
    pub(crate) fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The wall-clock budget attached via [`Engine::with_timeout`], if any.
    pub(crate) fn timeout_budget(&self) -> Option<std::time::Duration> {
        self.timeout
    }

    /// One sharded grid pass for the driver in [`crate::shard`]: level-0
    /// work comes off the context's rail (not a local chunk dispenser),
    /// and stranded payloads are handed back to the rail on exit.
    pub(crate) fn run_sharded_pass(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        shard: &ShardCtx<'_>,
    ) -> Result<MatchOutcome, LaunchError> {
        self.run_inner(graph, plan, 0, 1, None, None, None, Some(shard), None)
    }

    /// One anchored launch for the delta engine in [`crate::delta`]: the
    /// level-0 domain is the anchor context's two endpoints and level 1 is
    /// pinned to the paired endpoint, so the run counts exactly the
    /// embeddings that place the plan's first two order positions on the
    /// anchored data edge.
    pub(crate) fn run_anchored(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        anchor: &AnchorCtx<'_>,
        warm: Option<&WarmSlot>,
    ) -> Result<MatchOutcome, LaunchError> {
        self.run_inner(graph, plan, 0, 1, None, warm, None, None, Some(anchor))
    }

    /// Compiles the plan for `pattern` under this engine's options.
    pub fn compile(&self, pattern: &Pattern) -> MatchPlan {
        MatchPlan::compile(
            pattern,
            PlanOptions {
                induced: self.cfg.induced,
                code_motion: self.cfg.code_motion,
                symmetry_breaking: self.cfg.symmetry_breaking,
            },
        )
    }

    /// Matches `pattern` in `graph` and returns the count plus metrics.
    pub fn run(&self, graph: &Graph, pattern: &Pattern) -> Result<MatchOutcome, LaunchError> {
        let plan = self.compile(pattern);
        self.run_plan(graph, &plan)
    }

    /// Matches `pattern` and materializes every embedding (Fig. 3's
    /// `Output` path). Match counts explode quickly — prefer [`Engine::run`]
    /// unless the embeddings themselves are needed.
    pub fn enumerate(&self, graph: &Graph, pattern: &Pattern) -> Result<Enumeration, LaunchError> {
        let plan = self.compile(pattern);
        self.enumerate_plan(graph, &plan)
    }

    /// [`Engine::enumerate`] with a pre-compiled plan.
    pub fn enumerate_plan(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
    ) -> Result<Enumeration, LaunchError> {
        let collector = Mutex::new(Vec::new());
        let outcome =
            self.run_inner(graph, plan, 0, 1, Some(&collector), None, None, None, None)?;
        // Warps emit flat k-strided records; chunk them into per-embedding
        // vectors here, off the hot path.
        let k = plan.num_levels();
        let flat = collector
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let mut embeddings: Vec<Vec<VertexId>> =
            flat.chunks_exact(k).map(<[VertexId]>::to_vec).collect();
        embeddings.sort_unstable();
        debug_assert_eq!(embeddings.len() as u64, outcome.count);
        Ok(Enumeration {
            embeddings,
            outcome,
        })
    }

    /// Matches a pre-compiled plan (used by the bench harness to reuse
    /// compilation across runs and by multi-device partitioning).
    pub fn run_plan(&self, graph: &Graph, plan: &MatchPlan) -> Result<MatchOutcome, LaunchError> {
        self.run_partition(graph, plan, 0, 1)
    }

    /// [`Engine::run_plan`] on a [`WarmSlot`]'s parked resources: the
    /// launch reuses the slot's warp threads and recycled stack arenas
    /// instead of spawning/allocating per query. Counts, metrics, and
    /// fault semantics are identical to the cold path — if a degradation
    /// rung changes the grid geometry away from the slot's, that attempt
    /// silently falls back to a cold grid.
    pub fn run_plan_warm(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        warm: &WarmSlot,
    ) -> Result<MatchOutcome, LaunchError> {
        self.run_inner(graph, plan, 0, 1, None, Some(warm), None, None, None)
    }

    /// [`Engine::run_plan`] against a caller-held [`CompiledPlan`] whose
    /// tier/profile state persists across runs. This is how the resident
    /// service serves warm queries at their promoted tier: the profile
    /// counter lives in the plan-cache entry, not the launch. The compiled
    /// plan must have been lowered from `plan` (same canonical query).
    pub fn run_plan_compiled(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        compiled: &CompiledPlan,
    ) -> Result<MatchOutcome, LaunchError> {
        self.run_inner(graph, plan, 0, 1, None, None, Some(compiled), None, None)
    }

    /// [`Engine::run_plan_warm`] with a caller-held [`CompiledPlan`] (see
    /// [`Engine::run_plan_compiled`]).
    pub fn run_plan_warm_compiled(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        warm: &WarmSlot,
        compiled: Option<&CompiledPlan>,
    ) -> Result<MatchOutcome, LaunchError> {
        self.run_inner(graph, plan, 0, 1, None, Some(warm), compiled, None, None)
    }

    /// Matches only the level-0 vertices `v` with `v % devices == device` —
    /// the outermost-loop partitioning used for multi-GPU execution
    /// (§VIII-B: "duplicating the input graph and dividing the outermost
    /// loop iterations across GPUs").
    pub fn run_partition(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        device: usize,
        devices: usize,
    ) -> Result<MatchOutcome, LaunchError> {
        self.run_inner(graph, plan, device, devices, None, None, None, None, None)
    }

    /// Degradation-ladder driver: attempts the launch at the configured
    /// settings, and on a planning failure retries (with backoff, bounded
    /// by the recovery policy) at the next rung of
    /// [`recover::degrade`]'s count-invariant ladder.
    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        device: usize,
        devices: usize,
        collector: Option<&Mutex<Vec<VertexId>>>,
        warm: Option<&WarmSlot>,
        ext: Option<&CompiledPlan>,
        shard: Option<&ShardCtx<'_>>,
        anchor: Option<&AnchorCtx<'_>>,
    ) -> Result<MatchOutcome, LaunchError> {
        assert!(devices >= 1 && device < devices);
        debug_assert!(
            anchor.is_none() || shard.is_none(),
            "anchored launches own a two-vertex domain; sharding it is meaningless"
        );
        self.cfg.validate();
        let mut cfg = self.cfg;
        // Resolve the hub-bitmap index once, outside the degradation loop:
        // the ladder only shrinks launch geometry, never the graph, so
        // rebuilding per rung would waste the (host-side) build.
        let owned_hubs = (cfg.hub_bitmap.enabled && graph.hub_bitmap().is_none())
            .then(|| HubBitmapIndex::build(graph, cfg.hub_bitmap.hub_threshold));
        let hubs = if cfg.hub_bitmap.enabled {
            owned_hubs.as_ref().or_else(|| graph.hub_bitmap())
        } else {
            None
        };
        // Lower the plan to bytecode once, outside the degradation loop
        // (the ladder never changes the plan). Callers holding a persistent
        // CompiledPlan (the service cache) pass it in; one-shot runs lower
        // a fresh instance here. Hub routing owns the set operations when
        // enabled, so compilation is skipped alongside it.
        let owned_compiled = (cfg.compile.enabled && hubs.is_none() && ext.is_none()).then(|| {
            CompiledPlan::lower(plan, cfg.compile)
                .expect("plans produced by MatchPlan::compile always lower")
        });
        let compiled = if cfg.compile.enabled && hubs.is_none() {
            ext.or(owned_compiled.as_ref())
        } else {
            None
        };
        // Static pre-launch verification (DESIGN.md §4j): certify resource
        // bounds and plan soundness once, outside the degradation loop (the
        // plan never changes; a downgrade invalidates only the slab-cap
        // premise, which the post-run audit guards against below). A clean
        // certificate's capacity bounds are published on the compiled plan
        // so `WarpKernel::with_arena` can shape the slabs when
        // `VerifyTuning::apply_hints` asks for it.
        let verification = cfg.verify.enabled.then(|| {
            let profile = stmatch_plan_verify::GraphProfile::of(graph);
            let slab_cap = cfg.max_degree_slab.min(graph.max_degree().max(1));
            let repro = format!(
                "Engine::run on graph '{}' ({} vertices) with \
                 EngineConfig::with_verify(true), slab_cap {slab_cap}",
                graph.name(),
                graph.num_vertices(),
            );
            let v = stmatch_plan_verify::verify_plan(plan, &profile, slab_cap, &repro);
            if let (Some(caps), Some(c)) = (v.footprint_caps(), compiled) {
                c.set_footprint_hint(caps);
            }
            v
        });
        let mut downgrades: Vec<DowngradeStep> = Vec::new();
        loop {
            // Planning failures happen before any warp runs, so retrying
            // here can never double-count (and never touches `collector`).
            match self.attempt(
                &cfg, graph, plan, hubs, compiled, device, devices, collector, warm, shard, anchor,
            ) {
                Ok(mut outcome) => {
                    outcome.downgrades = downgrades;
                    // Runtime audit of the static certificate: the launch
                    // ran at the certified slab capacity (no downgrades),
                    // so a spill under a spill-free cert — or a peak above
                    // the abstract bound — is a verifier soundness bug.
                    if let Some(v) = verification
                        .as_ref()
                        .filter(|_| outcome.downgrades.is_empty())
                    {
                        if v.cert.spill_free {
                            debug_assert_eq!(
                                outcome.spill_events, 0,
                                "certificate claims spill-freedom but the run spilled"
                            );
                        }
                        debug_assert!(
                            outcome.peak_slab_cells <= v.cert.peak_cells(cfg.unroll),
                            "runtime peak {} exceeds certified bound {}",
                            outcome.peak_slab_cells,
                            v.cert.peak_cells(cfg.unroll)
                        );
                    }
                    return Ok(outcome);
                }
                Err(err) => {
                    if downgrades.len() as u32 >= cfg.recovery.max_downgrades {
                        return Err(err);
                    }
                    let Some((next, step)) = recover::degrade(&cfg, &err) else {
                        return Err(err);
                    };
                    downgrades.push(step);
                    if !cfg.recovery.backoff.is_zero() {
                        std::thread::sleep(cfg.recovery.backoff);
                    }
                    cfg = next;
                }
            }
        }
    }

    /// One launch attempt at a specific configuration: budget planning,
    /// then the (containment-wrapped, possibly multi-pass) launch.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &self,
        cfg: &EngineConfig,
        graph: &Graph,
        plan: &MatchPlan,
        hubs: Option<&HubBitmapIndex>,
        compiled: Option<&CompiledPlan>,
        device: usize,
        devices: usize,
        collector: Option<&Mutex<Vec<VertexId>>>,
        warm: Option<&WarmSlot>,
        shard: Option<&ShardCtx<'_>>,
        anchor: Option<&AnchorCtx<'_>>,
    ) -> Result<MatchOutcome, LaunchError> {
        let grid = Grid::new(cfg.grid)?;
        // A warm slot only serves launches at its exact geometry; after a
        // geometry-changing downgrade this attempt runs cold instead.
        let warm = warm.filter(|w| w.grid_config() == cfg.grid);
        let k = plan.num_levels();
        let stop = cfg.effective_stop(k);

        // --- Launch planning: shared-memory budget (per block). ---
        let mut shared = SharedBudget::new(cfg.grid.shared_mem_per_block);
        let wpb = cfg.grid.warps_per_block;
        // Csize: one u32 per set per unroll slot per warp (Fig. 7).
        shared.try_alloc("Csize", plan.num_sets() * cfg.unroll * 4 * wpb)?;
        // iter/uiter/level cursors per warp.
        shared.try_alloc("iter+uiter+level", (2 * k + 1) * 8 * wpb)?;
        // Compact dependence encoding (Fig. 9b), shared by the block.
        shared.try_alloc("set_ops+row_ptr", plan.compact().byte_size())?;
        // Steal mirrors: cursors + matched prefix for the stealable levels.
        shared.try_alloc("steal mirrors", (3 * stop * 8 + 8) * wpb)?;
        let shared_bytes = shared.used();

        // --- Global memory: fixed stack slabs (paper §VIII-A). ---
        let num_warps = cfg.grid.total_warps();
        let stack_bytes = plan.num_sets() * cfg.unroll * cfg.max_degree_slab * 4 * num_warps;
        self.memory.try_alloc(stack_bytes)?;
        let stats = self.launch(
            cfg, graph, plan, hubs, compiled, &grid, stop, device, devices, collector, warm, shard,
            anchor,
        );
        self.memory.free(stack_bytes);
        Ok(MatchOutcome {
            count: stats.metrics.matches(),
            metrics: stats.metrics,
            shared_bytes_per_block: shared_bytes,
            stack_bytes,
            num_sets: plan.num_sets(),
            timed_out: stats.timed_out,
            fault: if stats.report.is_clean() {
                None
            } else {
                Some(stats.report)
            },
            downgrades: Vec::new(),
            spill_events: stats.spill_events,
            peak_slab_cells: stats.peak_cells,
            // Snapshot after the launch: a mid-run tier-up is reported at
            // the tier the plan ended up on.
            served_tier: compiled.map(|c| c.tier().index()),
            l0_uncovered: (stats.timed_out && stats.cursor < stats.domain)
                .then_some((stats.cursor, stats.domain)),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn launch(
        &self,
        cfg: &EngineConfig,
        graph: &Graph,
        plan: &MatchPlan,
        hubs: Option<&HubBitmapIndex>,
        compiled: Option<&CompiledPlan>,
        grid: &Grid,
        stop: usize,
        device: usize,
        devices: usize,
        collector: Option<&Mutex<Vec<VertexId>>>,
        warm: Option<&WarmSlot>,
        shard: Option<&ShardCtx<'_>>,
        anchor: Option<&AnchorCtx<'_>>,
    ) -> LaunchStats {
        let n = graph.num_vertices();
        // Device partitioning is *strided*: device d owns the vertices
        // congruent to d modulo `devices`. With degree-ordered graphs a
        // contiguous split would hand every hub to device 0; striding
        // spreads the skew so all devices get comparable work (the paper
        // "divides the outermost loop iterations across GPUs"). The board
        // dispenses virtual indices; the kernel maps them to vertex ids.
        // Sharded grids own no local range at all: every level-0 index
        // comes off the cross-shard rail.
        let device_count = if let Some(a) = anchor {
            // Anchored launches enumerate from the updated edge's two
            // endpoints only — the whole point of O(batch) delta cost.
            a.map.len()
        } else if shard.is_some() {
            0
        } else if n > device {
            (n - device).div_ceil(devices)
        } else {
            0
        };
        let deadline = self.timeout.map(|t| Instant::now() + t);
        let active_plan = self.faults.as_ref().filter(|p| !p.is_empty());
        // While a plan can kill warps, swallow the default panic-hook
        // output for injected payloads (real panics still print).
        let _quiet = active_plan
            .filter(|p| p.injects_panics())
            .map(|_| crate::fault::silence_fault_panics());

        let mut report = FaultReport {
            reproduce: active_plan.and_then(|p| p.reproduce_line().map(String::from)),
            ..FaultReport::default()
        };
        let mut metrics = GridMetrics::default();
        let mut spill_events = 0u64;
        let mut peak_cells = 0u64;
        let mut timed_out = false;
        // Salvage state threaded between passes: where the level-0 range
        // stops and which reclaimed payloads are still unfinished.
        let mut cursor = 0usize;
        let mut preload: Vec<StealPayload> = Vec::new();
        let mut faults = active_plan;
        loop {
            let mut board = Board::new(
                cfg.grid.num_blocks,
                cfg.grid.warps_per_block,
                stop,
                (cursor, device_count),
                cfg.chunk_size,
            );
            if let Some(sc) = shard {
                board.attach_rail(Arc::clone(sc.rail), sc.shard);
            }
            if !preload.is_empty() {
                board.preload(std::mem::take(&mut preload));
            }
            if let Some(d) = deadline {
                board.set_deadline(d);
            }
            let deaths: Mutex<Vec<WarpDeath>> = Mutex::new(Vec::new());
            let arenas = warm.map(WarmSlot::arenas);
            let body = |warp: &mut stmatch_gpusim::Warp| {
                self.warp_body(
                    cfg,
                    graph,
                    plan,
                    hubs,
                    compiled,
                    &board,
                    faults,
                    device,
                    devices,
                    anchor.map(|a| a.map).or_else(|| shard.map(|sc| sc.map)),
                    anchor.map(|a| a.pins),
                    collector,
                    &deaths,
                    arenas,
                    warp,
                );
            };
            let (pass_metrics, escaped) = match warm {
                Some(w) => w.grid().launch_contained(&body),
                None => grid.launch_contained(body),
            };
            metrics.merge(&pass_metrics);
            report.escaped_panics += escaped.len();
            for d in deaths.into_inner().unwrap_or_else(PoisonError::into_inner) {
                report.requeued += d.requeued;
                report.deaths.push(d);
            }
            spill_events += board.spill_count();
            peak_cells = peak_cells.max(board.peak_count());
            let aborted = board.aborted();
            timed_out = timed_out || aborted;
            cursor = board.chunk_cursor();
            let leftovers = board.take_leftovers();
            if let Some(sc) = shard {
                // Sharded grids run exactly one pass: stranded payloads go
                // back to the rail, where live sibling shards (or the
                // driver's recovery rounds, see `crate::shard`) pick them
                // up. A timed-out run is partial by contract and keeps the
                // plain-engine accounting instead.
                if aborted {
                    report.unrecovered += leftovers.len();
                } else if !leftovers.is_empty() {
                    sc.rail.push_requeue(leftovers);
                }
                if report.deaths.len() >= cfg.grid.total_warps() {
                    // The whole shard died; record it on the rail so the
                    // driver knows a recovery round may be needed even if
                    // siblings steal the orphaned range meanwhile.
                    sc.rail.mark_shard_dead(sc.shard);
                }
                break;
            }
            let work_remains = !leftovers.is_empty() || cursor < device_count;
            if aborted || !work_remains {
                // Timed-out (or containment-failed) runs are partial by
                // contract; completed runs have nothing left to salvage.
                report.unrecovered += leftovers.len();
                break;
            }
            if report.salvage_launches >= cfg.recovery.salvage_relaunches {
                report.unrecovered += leftovers.len();
                break;
            }
            // Salvage relaunch: drain the stranded work with injection off
            // (an all-warps-dead grid, or a naive-mode requeue that landed
            // after every warp had exited, leaves work behind).
            report.salvage_launches += 1;
            preload = leftovers;
            faults = None;
        }
        LaunchStats {
            metrics,
            timed_out,
            report,
            spill_events,
            peak_cells,
            cursor,
            domain: device_count,
        }
    }

    /// One warp's driver loop, wrapped in the containment protocol: on
    /// panic, the kernel's unfinished work is reclaimed and requeued, the
    /// board's liveness bookkeeping is repaired, and the death is
    /// recorded — survivors finish the traversal with exact counts.
    #[allow(clippy::too_many_arguments)]
    fn warp_body(
        &self,
        cfg: &EngineConfig,
        graph: &Graph,
        plan: &MatchPlan,
        hubs: Option<&HubBitmapIndex>,
        compiled: Option<&CompiledPlan>,
        board: &Board,
        faults: Option<&FaultPlan>,
        device: usize,
        devices: usize,
        l0_map: Option<&[VertexId]>,
        anchor_pins: Option<&[(VertexId, VertexId)]>,
        collector: Option<&Mutex<Vec<VertexId>>>,
        deaths: &Mutex<Vec<WarpDeath>>,
        arenas: Option<&ArenaPool>,
        warp: &mut stmatch_gpusim::Warp,
    ) {
        let me = warp.id();
        // Which side of the idle protocol the warp is on, for death
        // bookkeeping (a busy death releases the busy count, an idle death
        // must clear its idle bit instead).
        let busy = Cell::new(true);
        let mut kernel: Option<WarpKernel> = None;
        let caught = catch_unwind(AssertUnwindSafe(|| {
            // Warm path: recycle a parked arena (reset, not reallocated)
            // instead of building fresh slabs for this query.
            let recycled = arenas.and_then(ArenaPool::checkout);
            let mut k = WarpKernel::with_arena(
                graph, plan, cfg, board, me, faults, hubs, recycled, compiled,
            );
            k.set_device_partition(device, devices);
            if let Some(map) = l0_map {
                k.set_level0_map(map);
            }
            if let Some(pins) = anchor_pins {
                k.set_anchor_pins(pins);
            }
            if collector.is_some() {
                k.enable_enumeration();
            }
            let kernel = kernel.insert(k);
            'outer: loop {
                if board.aborted() {
                    break;
                }
                // --- Busy phase: acquire and run work. ---
                if let Some((clo, chi, stolen)) = board.claim_chunk_tagged() {
                    if stolen {
                        // Fixed cost model: a cross-shard range travels
                        // over the rail (device-to-device copy), dearer
                        // than a same-grid global steal.
                        warp.metrics_mut().shard_steal_receives += 1;
                        warp.metrics_mut().simt_instructions += 512;
                    }
                    let t = Instant::now();
                    kernel.install_chunk(clo, chi);
                    kernel.run(warp);
                    warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
                    continue;
                }
                if let Some(p) = board.claim_requeued_busy() {
                    warp.metrics_mut().requeue_claims += 1;
                    // Same fixed cost model as a global-steal receive: the
                    // payload travels through global memory.
                    warp.metrics_mut().simt_instructions += 256;
                    let t = Instant::now();
                    kernel.install_payload(warp, &p);
                    kernel.run(warp);
                    warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
                    continue;
                }
                if let Some(p) = board.claim_rail_requeued() {
                    // A payload reclaimed from a dead sibling shard: the
                    // stack crosses the rail, at cross-shard cost.
                    warp.metrics_mut().requeue_claims += 1;
                    warp.metrics_mut().shard_steal_receives += 1;
                    warp.metrics_mut().simt_instructions += 512;
                    let t = Instant::now();
                    kernel.install_payload(warp, &p);
                    kernel.run(warp);
                    warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
                    continue;
                }
                if cfg.local_steal {
                    warp.metrics_mut().local_steal_attempts += 1;
                    if let Some(p) = board.try_local_steal(me) {
                        warp.metrics_mut().local_steals += 1;
                        // Fixed cost model: intra-block stack copy.
                        warp.metrics_mut().simt_instructions += 32;
                        let t = Instant::now();
                        kernel.install_payload(warp, &p);
                        kernel.run(warp);
                        warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
                        continue;
                    }
                }
                if !cfg.local_steal && !cfg.global_steal {
                    break; // naive mode: exit on chunk exhaustion
                }
                // --- Idle phase: spin for stealable or pushed work. ---
                board.mark_idle(me);
                busy.set(false);
                let idle_start = Instant::now();
                loop {
                    // Poll the deadline here too: with every busy warp
                    // stalled or dead, kernel-side polling alone would
                    // leave idle spinners waiting out the hang.
                    if board.finished() || board.check_deadline() {
                        warp.metrics_mut().idle_nanos += idle_start.elapsed().as_nanos() as u64;
                        break 'outer;
                    }
                    if board.chunks_remain() || (cfg.local_steal && board.any_local_victim(me)) {
                        board.mark_busy(me);
                        busy.set(true);
                        warp.metrics_mut().idle_nanos += idle_start.elapsed().as_nanos() as u64;
                        continue 'outer;
                    }
                    if cfg.global_steal {
                        if let Some(p) = board.try_claim_global(me) {
                            // try_claim_global marked us busy already.
                            busy.set(true);
                            warp.metrics_mut().idle_nanos += idle_start.elapsed().as_nanos() as u64;
                            warp.metrics_mut().global_steal_receives += 1;
                            warp.metrics_mut().simt_instructions += 256;
                            let t = Instant::now();
                            kernel.install_payload(warp, &p);
                            kernel.run(warp);
                            warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
                            continue 'outer;
                        }
                    }
                    if let Some(p) = board.try_claim_requeued(me) {
                        // try_claim_requeued marked us busy already.
                        busy.set(true);
                        warp.metrics_mut().idle_nanos += idle_start.elapsed().as_nanos() as u64;
                        warp.metrics_mut().requeue_claims += 1;
                        warp.metrics_mut().simt_instructions += 256;
                        let t = Instant::now();
                        kernel.install_payload(warp, &p);
                        kernel.run(warp);
                        warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
                        continue 'outer;
                    }
                    std::thread::yield_now();
                }
            }
        }));
        if let Err(payload) = caught {
            // Containment: roll the kernel's open transaction back, return
            // its unfinished work to the board, repair the liveness
            // bookkeeping — all under a second catch so a failure here
            // cannot leave survivors spinning on broken counters.
            let contained = catch_unwind(AssertUnwindSafe(|| {
                let reclaimed = kernel
                    .as_mut()
                    .map(WarpKernel::reclaim_on_death)
                    .unwrap_or_default();
                let n = reclaimed.len();
                board.requeue_dead(reclaimed);
                board.mark_dead(me, busy.get());
                n
            }));
            match contained {
                Ok(requeued) => {
                    // Tracked as class DeathLog (rank 40): a recovery-path
                    // leaf lock, acquired with nothing else held (requeue
                    // and mark_dead above have already released theirs).
                    simt_check::tracked_lock(deaths, simt_check::LockClass::DeathLog, 0).push(
                        WarpDeath {
                            warp: me,
                            message: crate::fault::describe_payload(payload.as_ref()),
                            requeued,
                        },
                    );
                }
                Err(_) => {
                    // Containment itself failed: abort the launch so
                    // survivors exit, and let the original panic escape to
                    // the grid's backstop (reported as `escaped_panics`).
                    board.force_abort();
                    resume_unwind(payload);
                }
            }
        }
        if let Some(k) = kernel.as_mut() {
            board.add_spills(k.spill_events());
            board.add_peak(k.peak_slab_cells());
            if let Some(p) = arenas {
                // Return the arena for the next query on this slot — after
                // the board bookkeeping above, before the collector leaf
                // lock below (both respect the declared hierarchy: the
                // pool lock ranks below every engine lock and is never
                // held across one). Dead warps return theirs too: the
                // reset at the next checkout makes torn state irrelevant.
                p.give_back(k.take_arena());
            }
            if let Some(c) = collector {
                // Poison recovery as in steal.rs (tracked_lock applies it):
                // embeddings are appended atomically per warp, so a
                // panicking sibling cannot tear this vector. A dead warp's
                // own uncommitted records were truncated by
                // `reclaim_on_death`; the committed prefix is exact and
                // must still be collected. Tracked as class Collector
                // (rank 50), a leaf lock acquired with nothing held.
                simt_check::tracked_lock(c, simt_check::LockClass::Collector, 0)
                    .append(&mut k.take_emitted());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use stmatch_gpusim::GridConfig;
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    fn small_grid() -> GridConfig {
        GridConfig {
            num_blocks: 2,
            warps_per_block: 2,
            shared_mem_per_block: SharedBudget::RTX3090_BYTES,
        }
    }

    fn run_cfg(cfg: EngineConfig, g: &Graph, p: &Pattern) -> u64 {
        Engine::new(cfg.with_grid(small_grid()))
            .run(g, p)
            .unwrap()
            .count
    }

    #[test]
    fn triangles_in_k6() {
        let g = gen::complete(6);
        assert_eq!(
            run_cfg(EngineConfig::default(), &g, &catalog::triangle()),
            20
        );
    }

    #[test]
    fn triangle_embeddings_without_symmetry() {
        let g = gen::complete(6);
        let cfg = EngineConfig {
            symmetry_breaking: false,
            ..EngineConfig::default()
        };
        assert_eq!(run_cfg(cfg, &g, &catalog::triangle()), 120);
    }

    #[test]
    fn k4_in_k7() {
        let g = gen::complete(7);
        assert_eq!(run_cfg(EngineConfig::default(), &g, &catalog::k4()), 35);
    }

    #[test]
    fn squares_in_grid_vertex_induced() {
        let g = gen::grid(3, 3);
        let cfg = EngineConfig::default().induced(true);
        assert_eq!(run_cfg(cfg, &g, &catalog::square()), 4);
    }

    #[test]
    fn ablation_configs_agree_on_counts() {
        let g = gen::erdos_renyi(60, 240, 5);
        let p = catalog::paper_query(6); // bowtie
        let expected = run_cfg(EngineConfig::naive(), &g, &p);
        assert!(expected > 0, "workload must be non-trivial");
        for cfg in [
            EngineConfig::local_steal_only(),
            EngineConfig::local_global_steal(),
            EngineConfig::full(),
        ] {
            assert_eq!(run_cfg(cfg, &g, &p), expected);
        }
    }

    #[test]
    fn code_motion_does_not_change_counts() {
        let g = gen::erdos_renyi(50, 200, 9);
        for q in [catalog::paper_query(3), catalog::paper_query(7)] {
            let with = EngineConfig {
                code_motion: true,
                ..EngineConfig::default()
            };
            let without = EngineConfig {
                code_motion: false,
                ..EngineConfig::default()
            };
            assert_eq!(
                run_cfg(with, &g, &q),
                run_cfg(without, &g, &q),
                "{}",
                q.name()
            );
        }
    }

    #[test]
    fn unroll_sizes_agree_on_counts() {
        let g = gen::erdos_renyi(40, 160, 2);
        let p = catalog::paper_query(2); // C5
        let expected = run_cfg(EngineConfig::default().with_unroll(1), &g, &p);
        for u in [2, 4, 8, 16] {
            assert_eq!(
                run_cfg(EngineConfig::default().with_unroll(u), &g, &p),
                expected
            );
        }
    }

    #[test]
    fn labeled_matching_filters() {
        let g = gen::complete(6).relabeled(vec![0, 0, 0, 1, 1, 1]);
        let t = catalog::triangle().with_labels(&[0, 0, 0]);
        // Triangles within {0,1,2}: exactly 1 (with symmetry breaking).
        assert_eq!(run_cfg(EngineConfig::default(), &g, &t), 1);
        let mixed = catalog::triangle().with_labels(&[0, 0, 1]);
        // Two label-0 vertices (C(3,2) choices) x 3 label-1: 9 subgraphs...
        // with symmetry breaking on the labeled pattern: Aut = swap of the
        // two label-0 nodes: 3 * 3 = 9.
        assert_eq!(run_cfg(EngineConfig::default(), &g, &mixed), 9);
    }

    #[test]
    fn single_vertex_pattern_counts_vertices() {
        let g = gen::star(5).relabeled(vec![1, 0, 0, 0, 0, 0]);
        let p = Pattern::new(1, &[]).with_labels(&[0]);
        assert_eq!(run_cfg(EngineConfig::default(), &g, &p), 5);
    }

    #[test]
    fn memory_budget_oom_fails_launch() {
        // 1 KiB cannot hold the stacks even at the bottom of the
        // degradation ladder (unroll 1, slab at its floor, 1 warp/block),
        // so the error must eventually surface.
        let g = gen::complete(5);
        let engine = Engine::with_memory_budget(EngineConfig::default(), 1024);
        match engine.run(&g, &catalog::triangle()) {
            Err(LaunchError::GlobalMemory(_)) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn shared_memory_overflow_fails_launch() {
        let g = gen::complete(5);
        let cfg = EngineConfig {
            grid: GridConfig {
                num_blocks: 1,
                warps_per_block: 2,
                shared_mem_per_block: 64, // absurdly small, below any rung
            },
            ..EngineConfig::default()
        };
        match Engine::new(cfg).run(&g, &catalog::triangle()) {
            Err(LaunchError::SharedMemory(_)) => {}
            other => panic!("expected shared-memory overflow, got {other:?}"),
        }
    }

    #[test]
    fn degradation_ladder_recovers_tight_shared_budget() {
        let g = gen::erdos_renyi(60, 240, 5);
        let p = catalog::paper_query(6); // bowtie
        let full = Engine::new(EngineConfig::default().with_grid(small_grid()))
            .run(&g, &p)
            .unwrap();
        assert!(full.downgrades.is_empty());
        // One byte below what the full config needs: the ladder must give
        // something up, and the first shared-memory rung is the unroll.
        let mut cfg = EngineConfig::default().with_grid(small_grid());
        cfg.grid.shared_mem_per_block = full.shared_bytes_per_block - 1;
        let degraded = Engine::new(cfg).run(&g, &p).unwrap();
        assert_eq!(degraded.count, full.count, "downgrades are count-invariant");
        assert!(!degraded.downgrades.is_empty());
        assert!(matches!(
            degraded.downgrades[0],
            DowngradeStep::Unroll { from: 8, .. }
        ));
        assert!(degraded.shared_bytes_per_block < full.shared_bytes_per_block);
        // With recovery disabled the same config fails fast.
        cfg.recovery = crate::recover::RecoveryPolicy::disabled();
        match Engine::new(cfg).run(&g, &p) {
            Err(LaunchError::SharedMemory(_)) => {}
            other => panic!("expected fail-fast overflow, got {other:?}"),
        }
    }

    #[test]
    fn partitions_sum_to_total() {
        let g = gen::erdos_renyi(80, 320, 13);
        let p = catalog::paper_query(1); // P5
        let engine = Engine::new(EngineConfig::default().with_grid(small_grid()));
        let plan = engine.compile(&p);
        let total = engine.run_plan(&g, &plan).unwrap().count;
        for devices in [2, 4] {
            let sum: u64 = (0..devices)
                .map(|d| engine.run_partition(&g, &plan, d, devices).unwrap().count)
                .sum();
            assert_eq!(sum, total, "devices={devices}");
        }
    }

    #[test]
    fn enumerate_matches_count_and_validity() {
        let g = gen::erdos_renyi(30, 100, 8);
        let p = catalog::paper_query(6); // bowtie
        let engine = Engine::new(EngineConfig::default().with_grid(small_grid()));
        let counted = engine.run(&g, &p).unwrap().count;
        let en = engine.enumerate(&g, &p).unwrap();
        assert_eq!(en.embeddings.len() as u64, counted);
        assert_eq!(en.outcome.count, counted);
        for emb in &en.embeddings {
            assert_eq!(emb.len(), p.size());
            for u in 0..p.size() {
                for v in (u + 1)..p.size() {
                    assert_ne!(emb[u], emb[v], "injective");
                    if p.has_edge(u, v) {
                        assert!(g.has_edge(emb[u], emb[v]), "edge preserved");
                    }
                }
            }
        }
        // Determinism across runs (embeddings are sorted).
        let en2 = engine.enumerate(&g, &p).unwrap();
        assert_eq!(en.embeddings, en2.embeddings);
    }

    #[test]
    fn enumerate_single_vertex_pattern() {
        let g = gen::star(4).relabeled(vec![1, 0, 0, 0, 0]);
        let p = Pattern::new(1, &[]).with_labels(&[0]);
        let engine = Engine::new(EngineConfig::default().with_grid(small_grid()));
        let en = engine.enumerate(&g, &p).unwrap();
        assert_eq!(en.embeddings, vec![vec![1], vec![2], vec![3], vec![4]]);
    }

    /// Steals off, unrolling on: the deterministic schedule under which
    /// instruction totals are reproducible across runs (steal timing would
    /// otherwise perturb batch composition), with the warp-wave batching
    /// the compiled tiers must reproduce still fully exercised.
    fn deterministic_cfg() -> EngineConfig {
        EngineConfig {
            local_steal: false,
            global_steal: false,
            ..EngineConfig::default().with_grid(small_grid())
        }
    }

    #[test]
    fn compiled_tiers_preserve_counts_and_metrics() {
        let g = gen::preferential_attachment(300, 5, 11).degree_ordered();
        for q in [1, 6, 8] {
            let p = catalog::paper_query(q);
            let base = Engine::new(deterministic_cfg()).run(&g, &p).unwrap();
            assert_eq!(base.served_tier, None, "q{q}: compile off reports no tier");
            // Tier 0 only: bytecode dispatch must be invisible in metrics.
            let mut cfg = deterministic_cfg();
            cfg.compile.enabled = true;
            cfg.compile.specialize = false;
            let bc = Engine::new(cfg).run(&g, &p).unwrap();
            assert_eq!(bc.count, base.count, "q{q} tier-0 count");
            assert_eq!(
                bc.total_instructions(),
                base.total_instructions(),
                "q{q} tier-0 instructions"
            );
            assert_eq!(
                bc.metrics.total().lane_utilization(),
                base.metrics.total().lane_utilization(),
                "q{q} tier-0 lanes"
            );
            assert_eq!(bc.served_tier, Some(0), "q{q} stays tier 0");
            // Forced specialization (threshold 0): q1 path and q8 cascade
            // get tier-1 bodies, q6 (general) stays on bytecode.
            let mut cfg = deterministic_cfg();
            cfg.compile.enabled = true;
            cfg.compile.tier_up_after = 0;
            let spec = Engine::new(cfg).run(&g, &p).unwrap();
            assert_eq!(spec.count, base.count, "q{q} tier-1 count");
            assert_eq!(
                spec.total_instructions(),
                base.total_instructions(),
                "q{q} tier-1 instructions"
            );
            let expect = if q == 6 { Some(0) } else { Some(1) };
            assert_eq!(spec.served_tier, expect, "q{q} routing");
        }
    }

    #[test]
    fn compile_with_hub_bitmap_routes_to_hub_path() {
        // Hub routing owns set operations; compilation must step aside so
        // compile+bitmap behaves exactly like bitmap alone.
        let g = gen::preferential_attachment(300, 5, 11).degree_ordered();
        let p = catalog::paper_query(8);
        let mut bitmap_only = deterministic_cfg();
        bitmap_only.hub_bitmap.enabled = true;
        let base = Engine::new(bitmap_only).run(&g, &p).unwrap();
        let mut both = deterministic_cfg();
        both.hub_bitmap.enabled = true;
        both.compile.enabled = true;
        both.compile.tier_up_after = 0;
        let out = Engine::new(both).run(&g, &p).unwrap();
        assert_eq!(out.count, base.count);
        assert_eq!(out.total_instructions(), base.total_instructions());
        assert_eq!(out.served_tier, None, "hub routing disables compilation");
    }

    #[test]
    fn stealing_happens_under_skew() {
        // One chunk covering the whole graph: a single warp grabs all the
        // work and every other warp can only make progress by stealing.
        // An injected stall holds every warp's second claim long enough
        // that the chunk owner's block sibling provably sees the full
        // mirror and steals — deterministic, where the previous version
        // retried and hoped the host scheduler would cooperate.
        let g = gen::preferential_attachment(4000, 4, 1).degree_ordered();
        let q = catalog::paper_query(8);
        let expected = Engine::new(EngineConfig::naive().with_grid(small_grid()))
            .run(&g, &q)
            .unwrap()
            .count;
        let mut cfg = EngineConfig::local_steal_only().with_grid(small_grid());
        cfg.chunk_size = g.num_vertices(); // a single chunk
        let mut plan = FaultPlan::new();
        for w in 0..small_grid().total_warps() {
            plan = plan.stall_at(w, 2, Duration::from_millis(50));
        }
        let out = Engine::new(cfg).with_fault_plan(plan).run(&g, &q).unwrap();
        assert_eq!(out.count, expected);
        assert!(
            out.metrics.total().local_steals >= 1,
            "a 50ms stall on the chunk owner must force a local steal"
        );
        assert!(out.fault.is_none(), "stalls are not deaths");
    }
}
