//! The STMatch engine: launch planning, the per-warp driver loop, and the
//! public matching API.

use crate::config::EngineConfig;
use crate::kernel::WarpKernel;
use crate::steal::Board;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;
use stmatch_gpusim::{Grid, GridMetrics, LaunchError, MemoryBudget, SharedBudget};
use stmatch_graph::{Graph, VertexId};
use stmatch_pattern::{MatchPlan, Pattern, PlanOptions};

/// Result of an enumeration run: the embeddings plus the usual outcome.
#[derive(Clone, Debug)]
pub struct Enumeration {
    /// One entry per match, indexed by pattern vertex: `embeddings[i][u]`
    /// is the data vertex matched to pattern vertex `u`. Sorted
    /// lexicographically for run-to-run determinism.
    pub embeddings: Vec<Vec<VertexId>>,
    /// Metrics of the run.
    pub outcome: MatchOutcome,
}

/// Result of one matching run.
#[derive(Clone, Debug)]
pub struct MatchOutcome {
    /// Number of matches (subgraphs with symmetry breaking on, embeddings
    /// otherwise).
    pub count: u64,
    /// Execution metrics (lane utilization, steals, load balance, wall
    /// time).
    pub metrics: GridMetrics,
    /// Shared-memory bytes reserved per threadblock at launch.
    pub shared_bytes_per_block: usize,
    /// Global-memory bytes reserved for the warp stacks (the paper's fixed
    /// `NUM_SETS × UNROLL × MAX_DEGREE × NUM_WARP` budget).
    pub stack_bytes: usize,
    /// The compiled plan's set count (`NUM_SETS`).
    pub num_sets: usize,
    /// True when the run was cut short by [`Engine::with_timeout`]; the
    /// count is then a partial lower bound (the paper's '−' cells).
    pub timed_out: bool,
}

impl MatchOutcome {
    /// Wall-clock milliseconds of the launch.
    pub fn elapsed_ms(&self) -> f64 {
        self.metrics.elapsed_nanos as f64 / 1e6
    }

    /// Simulated GPU time: the maximum SIMT instruction count over all
    /// warps. On hardware the grid finishes when its slowest warp finishes;
    /// this deterministic proxy makes load-balance effects measurable on
    /// any host (see DESIGN.md §1, "What time means here").
    pub fn simulated_cycles(&self) -> u64 {
        self.metrics
            .warps
            .iter()
            .map(|w| w.simt_instructions)
            .max()
            .unwrap_or(0)
    }

    /// Total SIMT instructions across warps (the work metric that code
    /// motion and unrolling reduce).
    pub fn total_instructions(&self) -> u64 {
        self.metrics.total().simt_instructions
    }
}

/// The STMatch matching engine.
///
/// ```
/// use stmatch_core::{Engine, EngineConfig};
/// use stmatch_graph::gen;
/// use stmatch_pattern::catalog;
///
/// let graph = gen::complete(6);
/// let engine = Engine::new(EngineConfig::default());
/// let outcome = engine.run(&graph, &catalog::triangle()).unwrap();
/// assert_eq!(outcome.count, 20); // C(6,3) triangles
/// ```
pub struct Engine {
    cfg: EngineConfig,
    memory: MemoryBudget,
    timeout: Option<std::time::Duration>,
}

impl Engine {
    /// Creates an engine with the given configuration and an unlimited
    /// device-memory budget.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine {
            cfg,
            memory: MemoryBudget::unlimited(),
            timeout: None,
        }
    }

    /// Creates an engine with a device-memory budget (bytes).
    pub fn with_memory_budget(cfg: EngineConfig, bytes: usize) -> Engine {
        Engine {
            cfg,
            memory: MemoryBudget::new(bytes),
            timeout: None,
        }
    }

    /// Sets a wall-clock budget after which the run is cancelled
    /// cooperatively; a cancelled outcome has `timed_out == true` and a
    /// partial count.
    pub fn with_timeout(mut self, timeout: std::time::Duration) -> Engine {
        self.timeout = Some(timeout);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Compiles the plan for `pattern` under this engine's options.
    pub fn compile(&self, pattern: &Pattern) -> MatchPlan {
        MatchPlan::compile(
            pattern,
            PlanOptions {
                induced: self.cfg.induced,
                code_motion: self.cfg.code_motion,
                symmetry_breaking: self.cfg.symmetry_breaking,
            },
        )
    }

    /// Matches `pattern` in `graph` and returns the count plus metrics.
    pub fn run(&self, graph: &Graph, pattern: &Pattern) -> Result<MatchOutcome, LaunchError> {
        let plan = self.compile(pattern);
        self.run_plan(graph, &plan)
    }

    /// Matches `pattern` and materializes every embedding (Fig. 3's
    /// `Output` path). Match counts explode quickly — prefer [`Engine::run`]
    /// unless the embeddings themselves are needed.
    pub fn enumerate(&self, graph: &Graph, pattern: &Pattern) -> Result<Enumeration, LaunchError> {
        let plan = self.compile(pattern);
        self.enumerate_plan(graph, &plan)
    }

    /// [`Engine::enumerate`] with a pre-compiled plan.
    pub fn enumerate_plan(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
    ) -> Result<Enumeration, LaunchError> {
        let collector = Mutex::new(Vec::new());
        let outcome = self.run_inner(graph, plan, 0, 1, Some(&collector))?;
        // Warps emit flat k-strided records; chunk them into per-embedding
        // vectors here, off the hot path.
        let k = plan.num_levels();
        let flat = collector
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let mut embeddings: Vec<Vec<VertexId>> =
            flat.chunks_exact(k).map(<[VertexId]>::to_vec).collect();
        embeddings.sort_unstable();
        debug_assert_eq!(embeddings.len() as u64, outcome.count);
        Ok(Enumeration {
            embeddings,
            outcome,
        })
    }

    /// Matches a pre-compiled plan (used by the bench harness to reuse
    /// compilation across runs and by multi-device partitioning).
    pub fn run_plan(&self, graph: &Graph, plan: &MatchPlan) -> Result<MatchOutcome, LaunchError> {
        self.run_partition(graph, plan, 0, 1)
    }

    /// Matches only the level-0 vertices `v` with `v % devices == device` —
    /// the outermost-loop partitioning used for multi-GPU execution
    /// (§VIII-B: "duplicating the input graph and dividing the outermost
    /// loop iterations across GPUs").
    pub fn run_partition(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        device: usize,
        devices: usize,
    ) -> Result<MatchOutcome, LaunchError> {
        self.run_inner(graph, plan, device, devices, None)
    }

    fn run_inner(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        device: usize,
        devices: usize,
        collector: Option<&Mutex<Vec<VertexId>>>,
    ) -> Result<MatchOutcome, LaunchError> {
        assert!(devices >= 1 && device < devices);
        let cfg = &self.cfg;
        cfg.validate();
        let grid = Grid::new(cfg.grid)?;
        let k = plan.num_levels();
        let stop = cfg.effective_stop(k);

        // --- Launch planning: shared-memory budget (per block). ---
        let mut shared = SharedBudget::new(cfg.grid.shared_mem_per_block);
        let wpb = cfg.grid.warps_per_block;
        // Csize: one u32 per set per unroll slot per warp (Fig. 7).
        shared.try_alloc("Csize", plan.num_sets() * cfg.unroll * 4 * wpb)?;
        // iter/uiter/level cursors per warp.
        shared.try_alloc("iter+uiter+level", (2 * k + 1) * 8 * wpb)?;
        // Compact dependence encoding (Fig. 9b), shared by the block.
        shared.try_alloc("set_ops+row_ptr", plan.compact().byte_size())?;
        // Steal mirrors: cursors + matched prefix for the stealable levels.
        shared.try_alloc("steal mirrors", (3 * stop * 8 + 8) * wpb)?;
        let shared_bytes = shared.used();

        // --- Global memory: fixed stack slabs (paper §VIII-A). ---
        let num_warps = cfg.grid.total_warps();
        let stack_bytes = plan.num_sets() * cfg.unroll * cfg.max_degree_slab * 4 * num_warps;
        self.memory.try_alloc(stack_bytes)?;
        let (metrics, timed_out) =
            self.launch(graph, plan, &grid, stop, device, devices, collector);
        self.memory.free(stack_bytes);
        Ok(MatchOutcome {
            count: metrics.matches(),
            metrics,
            shared_bytes_per_block: shared_bytes,
            stack_bytes,
            num_sets: plan.num_sets(),
            timed_out,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn launch(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        grid: &Grid,
        stop: usize,
        device: usize,
        devices: usize,
        collector: Option<&Mutex<Vec<VertexId>>>,
    ) -> (GridMetrics, bool) {
        let cfg = &self.cfg;
        let n = graph.num_vertices();
        // Device partitioning is *strided*: device d owns the vertices
        // congruent to d modulo `devices`. With degree-ordered graphs a
        // contiguous split would hand every hub to device 0; striding
        // spreads the skew so all devices get comparable work (the paper
        // "divides the outermost loop iterations across GPUs"). The board
        // dispenses virtual indices; the kernel maps them to vertex ids.
        let device_count = if n > device {
            (n - device).div_ceil(devices)
        } else {
            0
        };
        let mut board = Board::new(
            cfg.grid.num_blocks,
            cfg.grid.warps_per_block,
            stop,
            (0, device_count),
            cfg.chunk_size,
        );
        if let Some(t) = self.timeout {
            board.set_deadline(Instant::now() + t);
        }
        let metrics = grid.launch(|warp| {
            let mut kernel = WarpKernel::new(graph, plan, cfg, &board, warp.id());
            kernel.set_device_partition(device, devices);
            if collector.is_some() {
                kernel.enable_enumeration();
            }
            let me = warp.id();
            'outer: loop {
                if board.aborted() {
                    break;
                }
                // --- Busy phase: acquire and run work. ---
                if let Some((clo, chi)) = board.claim_chunk() {
                    let t = Instant::now();
                    kernel.install_chunk(clo, chi);
                    kernel.run(warp);
                    warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
                    continue;
                }
                if cfg.local_steal {
                    warp.metrics_mut().local_steal_attempts += 1;
                    if let Some(p) = board.try_local_steal(me) {
                        warp.metrics_mut().local_steals += 1;
                        // Fixed cost model: intra-block stack copy.
                        warp.metrics_mut().simt_instructions += 32;
                        let t = Instant::now();
                        kernel.install_payload(warp, &p);
                        kernel.run(warp);
                        warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
                        continue;
                    }
                }
                if !cfg.local_steal && !cfg.global_steal {
                    break; // naive mode: exit on chunk exhaustion
                }
                // --- Idle phase: spin for stealable or pushed work. ---
                board.mark_idle(me);
                let idle_start = Instant::now();
                loop {
                    if board.finished() || board.aborted() {
                        warp.metrics_mut().idle_nanos += idle_start.elapsed().as_nanos() as u64;
                        break 'outer;
                    }
                    if board.chunks_remain() || (cfg.local_steal && board.any_local_victim(me)) {
                        board.mark_busy(me);
                        warp.metrics_mut().idle_nanos += idle_start.elapsed().as_nanos() as u64;
                        continue 'outer;
                    }
                    if cfg.global_steal {
                        if let Some(p) = board.try_claim_global(me) {
                            // try_claim_global marked us busy already.
                            warp.metrics_mut().idle_nanos += idle_start.elapsed().as_nanos() as u64;
                            warp.metrics_mut().global_steal_receives += 1;
                            warp.metrics_mut().simt_instructions += 256;
                            let t = Instant::now();
                            kernel.install_payload(warp, &p);
                            kernel.run(warp);
                            warp.metrics_mut().busy_nanos += t.elapsed().as_nanos() as u64;
                            continue 'outer;
                        }
                    }
                    std::thread::yield_now();
                }
            }
            if let Some(c) = collector {
                // Poison recovery as in steal.rs: embeddings are appended
                // atomically per warp, so a panicking sibling cannot tear
                // this vector.
                c.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .append(&mut kernel.take_emitted());
            }
        });
        (metrics, board.aborted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_gpusim::GridConfig;
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    fn small_grid() -> GridConfig {
        GridConfig {
            num_blocks: 2,
            warps_per_block: 2,
            shared_mem_per_block: SharedBudget::RTX3090_BYTES,
        }
    }

    fn run_cfg(cfg: EngineConfig, g: &Graph, p: &Pattern) -> u64 {
        Engine::new(cfg.with_grid(small_grid()))
            .run(g, p)
            .unwrap()
            .count
    }

    #[test]
    fn triangles_in_k6() {
        let g = gen::complete(6);
        assert_eq!(
            run_cfg(EngineConfig::default(), &g, &catalog::triangle()),
            20
        );
    }

    #[test]
    fn triangle_embeddings_without_symmetry() {
        let g = gen::complete(6);
        let mut cfg = EngineConfig::default();
        cfg.symmetry_breaking = false;
        assert_eq!(run_cfg(cfg, &g, &catalog::triangle()), 120);
    }

    #[test]
    fn k4_in_k7() {
        let g = gen::complete(7);
        assert_eq!(run_cfg(EngineConfig::default(), &g, &catalog::k4()), 35);
    }

    #[test]
    fn squares_in_grid_vertex_induced() {
        let g = gen::grid(3, 3);
        let cfg = EngineConfig::default().induced(true);
        assert_eq!(run_cfg(cfg, &g, &catalog::square()), 4);
    }

    #[test]
    fn ablation_configs_agree_on_counts() {
        let g = gen::erdos_renyi(60, 240, 5);
        let p = catalog::paper_query(6); // bowtie
        let expected = run_cfg(EngineConfig::naive(), &g, &p);
        assert!(expected > 0, "workload must be non-trivial");
        for cfg in [
            EngineConfig::local_steal_only(),
            EngineConfig::local_global_steal(),
            EngineConfig::full(),
        ] {
            assert_eq!(run_cfg(cfg, &g, &p), expected);
        }
    }

    #[test]
    fn code_motion_does_not_change_counts() {
        let g = gen::erdos_renyi(50, 200, 9);
        for q in [catalog::paper_query(3), catalog::paper_query(7)] {
            let mut with = EngineConfig::default();
            with.code_motion = true;
            let mut without = EngineConfig::default();
            without.code_motion = false;
            assert_eq!(
                run_cfg(with, &g, &q),
                run_cfg(without, &g, &q),
                "{}",
                q.name()
            );
        }
    }

    #[test]
    fn unroll_sizes_agree_on_counts() {
        let g = gen::erdos_renyi(40, 160, 2);
        let p = catalog::paper_query(2); // C5
        let expected = run_cfg(EngineConfig::default().with_unroll(1), &g, &p);
        for u in [2, 4, 8, 16] {
            assert_eq!(
                run_cfg(EngineConfig::default().with_unroll(u), &g, &p),
                expected
            );
        }
    }

    #[test]
    fn labeled_matching_filters() {
        let g = gen::complete(6).relabeled(vec![0, 0, 0, 1, 1, 1]);
        let t = catalog::triangle().with_labels(&[0, 0, 0]);
        // Triangles within {0,1,2}: exactly 1 (with symmetry breaking).
        assert_eq!(run_cfg(EngineConfig::default(), &g, &t), 1);
        let mixed = catalog::triangle().with_labels(&[0, 0, 1]);
        // Two label-0 vertices (C(3,2) choices) x 3 label-1: 9 subgraphs...
        // with symmetry breaking on the labeled pattern: Aut = swap of the
        // two label-0 nodes: 3 * 3 = 9.
        assert_eq!(run_cfg(EngineConfig::default(), &g, &mixed), 9);
    }

    #[test]
    fn single_vertex_pattern_counts_vertices() {
        let g = gen::star(5).relabeled(vec![1, 0, 0, 0, 0, 0]);
        let p = Pattern::new(1, &[]).with_labels(&[0]);
        assert_eq!(run_cfg(EngineConfig::default(), &g, &p), 5);
    }

    #[test]
    fn memory_budget_oom_fails_launch() {
        let g = gen::complete(5);
        let engine = Engine::with_memory_budget(EngineConfig::default(), 1024);
        match engine.run(&g, &catalog::triangle()) {
            Err(LaunchError::GlobalMemory(_)) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn shared_memory_overflow_fails_launch() {
        let g = gen::complete(5);
        let mut cfg = EngineConfig::default();
        cfg.grid = GridConfig {
            num_blocks: 1,
            warps_per_block: 2,
            shared_mem_per_block: 64, // absurdly small
        };
        match Engine::new(cfg).run(&g, &catalog::triangle()) {
            Err(LaunchError::SharedMemory(_)) => {}
            other => panic!("expected shared-memory overflow, got {other:?}"),
        }
    }

    #[test]
    fn partitions_sum_to_total() {
        let g = gen::erdos_renyi(80, 320, 13);
        let p = catalog::paper_query(1); // P5
        let engine = Engine::new(EngineConfig::default().with_grid(small_grid()));
        let plan = engine.compile(&p);
        let total = engine.run_plan(&g, &plan).unwrap().count;
        for devices in [2, 4] {
            let sum: u64 = (0..devices)
                .map(|d| engine.run_partition(&g, &plan, d, devices).unwrap().count)
                .sum();
            assert_eq!(sum, total, "devices={devices}");
        }
    }

    #[test]
    fn enumerate_matches_count_and_validity() {
        let g = gen::erdos_renyi(30, 100, 8);
        let p = catalog::paper_query(6); // bowtie
        let engine = Engine::new(EngineConfig::default().with_grid(small_grid()));
        let counted = engine.run(&g, &p).unwrap().count;
        let en = engine.enumerate(&g, &p).unwrap();
        assert_eq!(en.embeddings.len() as u64, counted);
        assert_eq!(en.outcome.count, counted);
        for emb in &en.embeddings {
            assert_eq!(emb.len(), p.size());
            for u in 0..p.size() {
                for v in (u + 1)..p.size() {
                    assert_ne!(emb[u], emb[v], "injective");
                    if p.has_edge(u, v) {
                        assert!(g.has_edge(emb[u], emb[v]), "edge preserved");
                    }
                }
            }
        }
        // Determinism across runs (embeddings are sorted).
        let en2 = engine.enumerate(&g, &p).unwrap();
        assert_eq!(en.embeddings, en2.embeddings);
    }

    #[test]
    fn enumerate_single_vertex_pattern() {
        let g = gen::star(4).relabeled(vec![1, 0, 0, 0, 0]);
        let p = Pattern::new(1, &[]).with_labels(&[0]);
        let engine = Engine::new(EngineConfig::default().with_grid(small_grid()));
        let en = engine.enumerate(&g, &p).unwrap();
        assert_eq!(en.embeddings, vec![vec![1], vec![2], vec![3], vec![4]]);
    }

    #[test]
    fn stealing_happens_under_skew() {
        // One chunk covering the whole graph: a single warp grabs all the
        // work and every other warp can only make progress by stealing.
        // Host-scheduler timing decides *when* steals land, so allow a few
        // attempts before declaring failure.
        // The workload must outlast an OS scheduler quantum, or on a
        // single-core host the owning warp finishes before any stealer
        // thread ever runs.
        let g = gen::preferential_attachment(4000, 4, 1).degree_ordered();
        let q = catalog::paper_query(8);
        let expected = {
            let base = Engine::new(EngineConfig::naive().with_grid(small_grid()));
            base.run(&g, &q).unwrap().count
        };
        let mut steals = 0;
        for attempt in 0..5 {
            let mut cfg = EngineConfig::local_steal_only().with_grid(small_grid());
            cfg.chunk_size = g.num_vertices(); // a single chunk
            let out = Engine::new(cfg).run(&g, &q).unwrap();
            assert_eq!(out.count, expected, "attempt {attempt} miscounted");
            steals += out.metrics.total().local_steals;
            if steals > 0 {
                return;
            }
        }
        panic!("no local steals across 5 skewed runs");
    }
}
