//! Engine configuration and the paper's ablation presets.

use crate::recover::RecoveryPolicy;
use crate::setops::SetOpTuning;
use stmatch_gpusim::{GridConfig, WARP_SIZE};

/// Largest supported unroll size. The combined set operations map one
/// unroll slot's size per prefix-scan lane (Fig. 8), so a batch can never
/// span more slots than the warp has lanes.
pub const MAX_UNROLL: usize = WARP_SIZE;

/// Configuration of the STMatch engine.
///
/// Field defaults follow §VIII-A of the paper — `StopLevel = 2`, unroll
/// size 8, `MAX_DEGREE = 4096` — except `DetectLevel` (see its field doc).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Grid geometry (blocks × warps per block).
    pub grid: GridConfig,
    /// Loop-unrolling size: how many iterations' set operations are combined
    /// into one warp-wide operation (Fig. 7/8). 1 disables unrolling.
    pub unroll: usize,
    /// Levels `< stop_level` are stealable (Algorithm 2's `StopLevel`).
    pub stop_level: usize,
    /// Busy warps test for idle blocks when claiming work at a level
    /// `< detect_level` (§V-B's `DetectLevel`). Meaningful values are
    /// `1..=stop_level`. The paper uses 1 on a 2624-warp GPU; with the
    /// simulator's much smaller grids, detection must fire on every
    /// shallow claim or endgame imbalance dominates, so the default is 2.
    pub detect_level: usize,
    /// Number of outermost-loop vertices claimed per level-0 chunk (Fig. 4).
    pub chunk_size: usize,
    /// Enable intra-threadblock work stealing (§V-A).
    pub local_steal: bool,
    /// Enable cross-threadblock work stealing (§V-B).
    pub global_steal: bool,
    /// Enable loop-invariant code motion (§VII).
    pub code_motion: bool,
    /// Count each subgraph once (true) or each embedding (false).
    pub symmetry_breaking: bool,
    /// Vertex-induced (true) vs edge-induced (false) matching.
    pub induced: bool,
    /// Candidate-set slab capacity per (set, unroll slot); the paper's
    /// `MAX_DEGREE`. Sizes both the memory accounting and the flat stack
    /// arena's per-slot slabs — slabs spill transparently to the heap when
    /// a candidate list outgrows them, like the paper's CPU-memory
    /// overflow for hubs (see `arena`).
    pub max_degree_slab: usize,
    /// Size-ratio thresholds steering the adaptive set-operation kernels
    /// (binary search / linear merge / galloping search, plus the
    /// hub-bitmap probe/merge paths when [`EngineConfig::hub_bitmap`] is
    /// enabled). Host-side only for the element-stream algorithms: tuning
    /// never changes results, and only the bitmap-merge paths change
    /// simulator metrics.
    pub setops: SetOpTuning,
    /// Hub-bitmap index routing (see `stmatch_graph::bitmap` and
    /// DESIGN.md §4f). Disabled by default: the engine then ignores any
    /// index attached to the graph and behaves bit-identically to
    /// pre-bitmap revisions.
    pub hub_bitmap: HubBitmapTuning,
    /// Bounds on automatic fault recovery: the degradation ladder taken on
    /// launch-planning failures and the salvage relaunches draining work
    /// requeued from dead warps (see `recover` and DESIGN.md §4d).
    /// [`RecoveryPolicy::disabled`] restores fail-fast launches.
    pub recovery: RecoveryPolicy,
    /// Plan-compilation tiers (bytecode dispatch + profile-guided
    /// specialization, see `compile` and DESIGN.md §4h). Disabled by
    /// default: the kernel then walks the plan per claim exactly as
    /// pre-compilation revisions did, bit-identically.
    pub compile: CompileTuning,
    /// Sharded multi-grid execution (see `shard` and DESIGN.md §4i):
    /// work-aware partitioning of the level-0 domain, cross-shard range
    /// stealing, and shard-level fault recovery. Disabled by default: the
    /// engine and `run_multi_device` then behave bit-identically to
    /// pre-sharding revisions.
    pub shard: ShardTuning,
    /// Static plan verification before launch (see `stmatch_plan_verify`
    /// and DESIGN.md §4j): abstract-interpretation resource certificates,
    /// bytecode liveness, and plan soundness checks. Disabled by default:
    /// the engine then launches exactly as pre-verifier revisions did.
    pub verify: VerifyTuning,
    /// Batch-dynamic incremental matching (see `delta` and DESIGN.md §4k):
    /// `Engine::run_delta` enumerates the match delta of an edge batch from
    /// anchored launches over the affected frontier, and `MatchService`
    /// gains `apply_batch`/`submit_watch`. Disabled by default: one-shot
    /// runs never consult this knob, so every existing path stays
    /// bit-identical.
    pub delta: DeltaTuning,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            grid: GridConfig::default(),
            unroll: 8,
            stop_level: 2,
            detect_level: 2,
            chunk_size: 4,
            local_steal: true,
            global_steal: true,
            code_motion: true,
            symmetry_breaking: true,
            induced: false,
            max_degree_slab: 4096,
            setops: SetOpTuning::default(),
            hub_bitmap: HubBitmapTuning::default(),
            recovery: RecoveryPolicy::default(),
            compile: CompileTuning::default(),
            shard: ShardTuning::default(),
            verify: VerifyTuning::default(),
            delta: DeltaTuning::default(),
        }
    }
}

/// Incremental-matching knob: whether `Engine::run_delta` and the service's
/// `apply_batch`/`submit_watch` surface are armed, and how delta launches
/// are shaped.
///
/// Off by default and consulted by **no** one-shot code path, so existing
/// runs are bit-identical with the knob off. Delta mode itself is exact
/// (oracle-tested against full recomputation), but it is a *different*
/// workload: anchored two-vertex domains on tiny grids, with symmetry
/// breaking replaced by automorphism division.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaTuning {
    /// Arm incremental matching (default `false`). `Engine::run_delta`
    /// panics without it; the service only accepts `apply_batch` /
    /// `submit_watch` when its engine config has it on.
    pub enabled: bool,
    /// Grid geometry for anchored delta launches. Each stage pins the
    /// level-0 domain to the two endpoints of one updated edge, so the
    /// default is a single warp — launching the full grid would park
    /// dozens of warps per stage.
    pub grid: GridConfig,
    /// Service only: fold the overlay into a fresh CSR after this many
    /// applied batches (0 = never compact). Compaction re-indexes vertices
    /// that became hubs and resets per-query patch-lookup overhead.
    pub compact_every: u32,
}

impl Default for DeltaTuning {
    fn default() -> Self {
        DeltaTuning {
            enabled: false,
            grid: GridConfig {
                num_blocks: 1,
                warps_per_block: 1,
                ..GridConfig::default()
            },
            compact_every: 64,
        }
    }
}

/// Static-verification knob: whether launches run the plan verifier first,
/// and whether the resource certificate's per-set capacity hints reshape
/// the warp arenas.
///
/// Verification never changes match results. With `apply_hints` off the
/// run is bit-identical to an unverified one (the certificate only adds
/// debug assertions and outcome metadata); with it on, only host-side slab
/// packing changes — the simulated metrics stay identical because slab
/// geometry is invisible to the instruction stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VerifyTuning {
    /// Run the static verifier before each launch (default `false`). A
    /// plan with soundness diagnostics still launches — the verifier
    /// reports, the caller decides — but the certificate is recorded and
    /// audited against runtime spill/peak counters in debug builds.
    pub enabled: bool,
    /// Apply the certificate's per-set capacity bounds when sizing the
    /// warp arenas (default `false`). Only certificates from *clean*
    /// verifications are applied; any diagnostic disables shaping for
    /// that run.
    pub apply_hints: bool,
}

/// Sharding knob: whether a run is split over several concurrently running
/// grids ("shards"), how many, and which balancing features are on.
///
/// Sharding never changes match results — the shards partition the level-0
/// domain exactly, and shard-death recovery is count-invariant (see
/// `shard` and DESIGN.md §4i).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardTuning {
    /// Route runs through the sharded multi-grid driver (default `false`).
    pub enabled: bool,
    /// Number of shards (concurrent grids) per run (default 4).
    pub shards: usize,
    /// Partition the level-0 domain by per-vertex work weights
    /// (degree/intersection skew) instead of contiguous equal slices
    /// (default `true`).
    pub work_aware: bool,
    /// Let idle shards steal level-0 ranges from loaded ones over the
    /// cross-shard rail (default `true`).
    pub cross_steal: bool,
}

impl Default for ShardTuning {
    fn default() -> Self {
        ShardTuning {
            enabled: false,
            shards: 4,
            work_aware: true,
            cross_steal: true,
        }
    }
}

/// Plan-compilation knob: whether the kernel executes lowered bytecode
/// instead of walking the plan per claim, and when profile counters promote
/// a plan to its monomorphized tier-1 body.
///
/// Compilation never changes match results or simulated metrics — each
/// bytecode instruction issues exactly the set-operation call the plan walk
/// would have — so the tiers only change host-side dispatch cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompileTuning {
    /// Execute plans through lowered bytecode (default `false`). Only the
    /// classic element engine compiles; with hub-bitmap routing enabled the
    /// kernel keeps plan-walking, so `compile` + `hub_bitmap` behaves
    /// exactly like `hub_bitmap` alone.
    pub enabled: bool,
    /// Claims observed (across every run sharing the compiled plan, e.g.
    /// via the service's plan cache) before a specializable plan is
    /// promoted to tier 1 (default 4096). `0` skips profiling and starts
    /// specializable plans at tier 1.
    pub tier_up_after: u64,
    /// Allow tier-1 monomorphized bodies at all (default `true`). With
    /// `false`, every compiled plan stays on the tier-0 dispatch loop —
    /// the pure-bytecode measurement point of `BENCH_PR7.json`.
    pub specialize: bool,
}

impl Default for CompileTuning {
    fn default() -> Self {
        CompileTuning {
            enabled: false,
            tier_up_after: 4096,
            specialize: true,
        }
    }
}

/// Hub-bitmap index knob: whether the kernel routes set operations through
/// bitmap rows, and which degree makes a vertex a hub.
///
/// When `enabled`, the engine uses the graph's attached
/// [`HubBitmapIndex`](stmatch_graph::HubBitmapIndex) or builds one at
/// `hub_threshold` per run. Bitmap routing never changes match results —
/// only host algorithms and the wave structure of bitmap merges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HubBitmapTuning {
    /// Route set operations through hub-bitmap paths (default `false`).
    pub enabled: bool,
    /// Vertices with `degree > hub_threshold` (strict) get bitmap rows
    /// when the engine builds the index itself (default 32). Ignored when
    /// the graph already carries an index.
    pub hub_threshold: usize,
}

impl Default for HubBitmapTuning {
    fn default() -> Self {
        HubBitmapTuning {
            enabled: false,
            hub_threshold: 32,
        }
    }
}

impl EngineConfig {
    /// The `naive` ablation point of Fig. 12: outer-loop parallelization
    /// with neither stealing nor unrolling (code motion stays on, as in the
    /// paper's ablation).
    pub fn naive() -> Self {
        EngineConfig {
            local_steal: false,
            global_steal: false,
            unroll: 1,
            ..Self::default()
        }
    }

    /// `localsteal`: intra-block stealing only.
    pub fn local_steal_only() -> Self {
        EngineConfig {
            local_steal: true,
            global_steal: false,
            unroll: 1,
            ..Self::default()
        }
    }

    /// `local+globalsteal`: both stealing levels, no unrolling.
    pub fn local_global_steal() -> Self {
        EngineConfig {
            local_steal: true,
            global_steal: true,
            unroll: 1,
            ..Self::default()
        }
    }

    /// `unroll+local+globalsteal`: the full system.
    pub fn full() -> Self {
        Self::default()
    }

    /// Effective stop level for a pattern of `k` levels: stealing below the
    /// last level only.
    pub fn effective_stop(&self, k: usize) -> usize {
        self.stop_level.min(k.saturating_sub(1)).max(1)
    }

    /// Returns a copy with the given induced mode.
    pub fn induced(mut self, induced: bool) -> Self {
        self.induced = induced;
        self
    }

    /// Returns a copy with the given unroll size.
    pub fn with_unroll(mut self, unroll: usize) -> Self {
        assert!(
            (1..=MAX_UNROLL).contains(&unroll),
            "unroll must be in 1..={MAX_UNROLL}"
        );
        self.unroll = unroll;
        self
    }

    /// Returns a copy with the given grid geometry.
    pub fn with_grid(mut self, grid: GridConfig) -> Self {
        self.grid = grid;
        self
    }

    /// Returns a copy with hub-bitmap routing switched on or off.
    pub fn with_hub_bitmap(mut self, enabled: bool) -> Self {
        self.hub_bitmap.enabled = enabled;
        self
    }

    /// Returns a copy with plan-compilation tiers switched on or off.
    pub fn with_compile(mut self, enabled: bool) -> Self {
        self.compile.enabled = enabled;
        self
    }

    /// Returns a copy with static plan verification switched on or off.
    pub fn with_verify(mut self, enabled: bool) -> Self {
        self.verify.enabled = enabled;
        self
    }

    /// Returns a copy with verification on *and* certificate capacity
    /// hints applied to arena sizing.
    pub fn with_verify_hints(mut self) -> Self {
        self.verify.enabled = true;
        self.verify.apply_hints = true;
        self
    }

    /// Returns a copy with incremental (delta) matching switched on or off.
    pub fn with_delta(mut self, enabled: bool) -> Self {
        self.delta.enabled = enabled;
        self
    }

    /// Returns a copy with sharded execution switched on or off.
    pub fn with_shard(mut self, enabled: bool) -> Self {
        self.shard.enabled = enabled;
        self
    }

    /// Returns a copy with sharded execution on at the given shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shard.enabled = true;
        self.shard.shards = shards;
        self
    }

    /// Validates internal consistency; every launch entry point calls this
    /// before building warp state, so a malformed config fails loudly at
    /// the API boundary instead of corrupting a lane mapping deep in the
    /// set-op stream.
    pub fn validate(&self) {
        assert!(
            self.unroll >= 1 && self.unroll <= MAX_UNROLL,
            "unroll must be in 1..={MAX_UNROLL}: the combined set ops map \
             one unroll slot per warp lane (got {})",
            self.unroll
        );
        assert!(
            self.detect_level <= self.stop_level,
            "DetectLevel ({}) must not exceed StopLevel ({})",
            self.detect_level,
            self.stop_level
        );
        assert!(self.max_degree_slab >= 1, "max_degree_slab must be >= 1");
        assert!(self.chunk_size >= 1, "chunk_size must be >= 1");
        assert!(self.shard.shards >= 1, "shard count must be >= 1");
        assert!(
            self.delta.grid.num_blocks >= 1 && self.delta.grid.warps_per_block >= 1,
            "delta grid must have at least one warp"
        );
        // `compile` needs no range check here: every CompileTuning value is
        // admissible, and malformed *streams* are rejected at lower time by
        // `PlanBytecode::verify` with a named BytecodeError (same fail-loud
        // boundary as the unroll assertion above).
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = EngineConfig::default();
        assert_eq!(c.unroll, 8);
        assert_eq!(c.stop_level, 2);
        assert_eq!(c.detect_level, 2);
        assert_eq!(c.max_degree_slab, 4096);
        assert!(c.code_motion);
        // Recovery is on by default, fault injection is not (plans attach
        // to the Engine, never to the config).
        assert!(c.recovery.max_downgrades > 0);
        assert!(c.recovery.salvage_relaunches > 0);
        // Bitmap routing defaults off so baselines stay bit-identical.
        assert!(!c.hub_bitmap.enabled);
        assert_eq!(c.hub_bitmap.hub_threshold, 32);
        assert!(c.with_hub_bitmap(true).hub_bitmap.enabled);
        // Compilation tiers also default off (bit-identical baseline);
        // tier-1 promotion defaults to a profile threshold, not instant.
        assert!(!c.compile.enabled);
        assert_eq!(c.compile.tier_up_after, 4096);
        assert!(c.compile.specialize);
        assert!(c.with_compile(true).compile.enabled);
        // Sharding also defaults off (bit-identical baseline) with the
        // balancing features armed for when it is switched on.
        assert!(!c.shard.enabled);
        assert_eq!(c.shard.shards, 4);
        assert!(c.shard.work_aware);
        assert!(c.shard.cross_steal);
        assert!(c.with_shard(true).shard.enabled);
        assert_eq!(c.with_shards(8).shard.shards, 8);
        // Static verification defaults off (bit-identical baseline);
        // capacity hints are a second, independent opt-in.
        assert!(!c.verify.enabled);
        assert!(!c.verify.apply_hints);
        assert!(c.with_verify(true).verify.enabled);
        assert!(!c.with_verify(true).verify.apply_hints);
        assert!(c.with_verify_hints().verify.apply_hints);
        // Incremental matching defaults off (bit-identical baseline: no
        // one-shot path consults the knob) with a one-warp anchored grid.
        assert!(!c.delta.enabled);
        assert_eq!(c.delta.grid.num_blocks, 1);
        assert_eq!(c.delta.grid.warps_per_block, 1);
        assert_eq!(c.delta.compact_every, 64);
        assert!(c.with_delta(true).delta.enabled);
    }

    #[test]
    fn ablation_presets_differ_as_expected() {
        assert!(!EngineConfig::naive().local_steal);
        assert!(EngineConfig::local_steal_only().local_steal);
        assert!(!EngineConfig::local_steal_only().global_steal);
        assert!(EngineConfig::local_global_steal().global_steal);
        assert_eq!(EngineConfig::local_global_steal().unroll, 1);
        assert_eq!(EngineConfig::full().unroll, 8);
    }

    #[test]
    fn effective_stop_clamps_to_pattern_depth() {
        let c = EngineConfig::default();
        assert_eq!(c.effective_stop(7), 2);
        assert_eq!(c.effective_stop(2), 1);
        assert_eq!(c.effective_stop(3), 2);
    }

    #[test]
    #[should_panic(expected = "unroll")]
    fn rejects_zero_unroll() {
        let _ = EngineConfig::default().with_unroll(0);
    }

    #[test]
    fn validate_accepts_all_presets() {
        EngineConfig::default().validate();
        EngineConfig::naive().validate();
        EngineConfig::local_steal_only().validate();
        EngineConfig::local_global_steal().validate();
        EngineConfig::full().with_unroll(MAX_UNROLL).validate();
    }

    #[test]
    #[should_panic(expected = "warp lane")]
    fn validate_rejects_unroll_beyond_warp_width() {
        let c = EngineConfig {
            unroll: MAX_UNROLL + 1,
            ..EngineConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "DetectLevel")]
    fn validate_rejects_detect_above_stop() {
        let mut c = EngineConfig::default();
        c.detect_level = c.stop_level + 1;
        c.validate();
    }
}
