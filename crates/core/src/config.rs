//! Engine configuration and the paper's ablation presets.

use stmatch_gpusim::GridConfig;

/// Configuration of the STMatch engine.
///
/// Field defaults follow §VIII-A of the paper — `StopLevel = 2`, unroll
/// size 8, `MAX_DEGREE = 4096` — except `DetectLevel` (see its field doc).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineConfig {
    /// Grid geometry (blocks × warps per block).
    pub grid: GridConfig,
    /// Loop-unrolling size: how many iterations' set operations are combined
    /// into one warp-wide operation (Fig. 7/8). 1 disables unrolling.
    pub unroll: usize,
    /// Levels `< stop_level` are stealable (Algorithm 2's `StopLevel`).
    pub stop_level: usize,
    /// Busy warps test for idle blocks when claiming work at a level
    /// `< detect_level` (§V-B's `DetectLevel`). Meaningful values are
    /// `1..=stop_level`. The paper uses 1 on a 2624-warp GPU; with the
    /// simulator's much smaller grids, detection must fire on every
    /// shallow claim or endgame imbalance dominates, so the default is 2.
    pub detect_level: usize,
    /// Number of outermost-loop vertices claimed per level-0 chunk (Fig. 4).
    pub chunk_size: usize,
    /// Enable intra-threadblock work stealing (§V-A).
    pub local_steal: bool,
    /// Enable cross-threadblock work stealing (§V-B).
    pub global_steal: bool,
    /// Enable loop-invariant code motion (§VII).
    pub code_motion: bool,
    /// Count each subgraph once (true) or each embedding (false).
    pub symmetry_breaking: bool,
    /// Vertex-induced (true) vs edge-induced (false) matching.
    pub induced: bool,
    /// Candidate-set slab capacity per (set, unroll slot); the paper's
    /// `MAX_DEGREE`. Only used for memory accounting — slabs spill
    /// transparently, like the paper's CPU-memory overflow for hubs.
    pub max_degree_slab: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            grid: GridConfig::default(),
            unroll: 8,
            stop_level: 2,
            detect_level: 2,
            chunk_size: 4,
            local_steal: true,
            global_steal: true,
            code_motion: true,
            symmetry_breaking: true,
            induced: false,
            max_degree_slab: 4096,
        }
    }
}

impl EngineConfig {
    /// The `naive` ablation point of Fig. 12: outer-loop parallelization
    /// with neither stealing nor unrolling (code motion stays on, as in the
    /// paper's ablation).
    pub fn naive() -> Self {
        EngineConfig {
            local_steal: false,
            global_steal: false,
            unroll: 1,
            ..Self::default()
        }
    }

    /// `localsteal`: intra-block stealing only.
    pub fn local_steal_only() -> Self {
        EngineConfig {
            local_steal: true,
            global_steal: false,
            unroll: 1,
            ..Self::default()
        }
    }

    /// `local+globalsteal`: both stealing levels, no unrolling.
    pub fn local_global_steal() -> Self {
        EngineConfig {
            local_steal: true,
            global_steal: true,
            unroll: 1,
            ..Self::default()
        }
    }

    /// `unroll+local+globalsteal`: the full system.
    pub fn full() -> Self {
        Self::default()
    }

    /// Effective stop level for a pattern of `k` levels: stealing below the
    /// last level only.
    pub fn effective_stop(&self, k: usize) -> usize {
        self.stop_level.min(k.saturating_sub(1)).max(1)
    }

    /// Returns a copy with the given induced mode.
    pub fn induced(mut self, induced: bool) -> Self {
        self.induced = induced;
        self
    }

    /// Returns a copy with the given unroll size.
    pub fn with_unroll(mut self, unroll: usize) -> Self {
        assert!(unroll >= 1 && unroll <= 32, "unroll must be in 1..=32");
        self.unroll = unroll;
        self
    }

    /// Returns a copy with the given grid geometry.
    pub fn with_grid(mut self, grid: GridConfig) -> Self {
        self.grid = grid;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_settings() {
        let c = EngineConfig::default();
        assert_eq!(c.unroll, 8);
        assert_eq!(c.stop_level, 2);
        assert_eq!(c.detect_level, 2);
        assert_eq!(c.max_degree_slab, 4096);
        assert!(c.code_motion);
    }

    #[test]
    fn ablation_presets_differ_as_expected() {
        assert!(!EngineConfig::naive().local_steal);
        assert!(EngineConfig::local_steal_only().local_steal);
        assert!(!EngineConfig::local_steal_only().global_steal);
        assert!(EngineConfig::local_global_steal().global_steal);
        assert_eq!(EngineConfig::local_global_steal().unroll, 1);
        assert_eq!(EngineConfig::full().unroll, 8);
    }

    #[test]
    fn effective_stop_clamps_to_pattern_depth() {
        let c = EngineConfig::default();
        assert_eq!(c.effective_stop(7), 2);
        assert_eq!(c.effective_stop(2), 1);
        assert_eq!(c.effective_stop(3), 2);
    }

    #[test]
    #[should_panic(expected = "unroll")]
    fn rejects_zero_unroll() {
        let _ = EngineConfig::default().with_unroll(0);
    }
}
