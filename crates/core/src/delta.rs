//! Batch-dynamic incremental matching (DESIGN.md §4k).
//!
//! Instead of recounting a pattern against the whole graph after every
//! update batch, the delta engine enumerates only the embeddings that the
//! batch created or destroyed. The decomposition:
//!
//! * `removed` = embeddings of the **pre**-batch graph containing at least
//!   one net-deleted edge;
//! * `added`   = embeddings of the **post**-batch graph containing at least
//!   one net-inserted edge.
//!
//! Each side is counted exactly once via two disciplines layered on the
//! ordinary warp kernel:
//!
//! 1. **Anchoring.** For every unordered pattern edge `{p, q}` we compile
//!    an anchored plan ([`MatchPlan::compile_anchored`]) whose matching
//!    order starts `[p, q, ...]`. A launch then pins level 0 to an update
//!    edge's endpoints `[a, b]` and level 1 to the paired endpoint, so the
//!    run counts exactly the embeddings mapping `{p, q}` onto `{a, b}`.
//!    Injectivity means at most one pattern edge can land on a given data
//!    edge, so summing over the pattern's edges counts each embedding that
//!    *uses* `{a, b}` exactly once.
//! 2. **Staged views.** Within a batch, an embedding may contain several
//!    update edges. Order the net deletes `d_0..d_{m-1}`; stage `i`
//!    enumerates `d_i` against `pre ∖ {d_0..d_{i-1}}`, so an embedding
//!    containing several deleted edges is counted only at its
//!    lowest-indexed one. Inserts run symmetrically against
//!    `post ∖ {e_{i+1}..}`, counting at the highest-indexed insert. The
//!    stage views are O(touched) patches ([`Graph::without_edges`]), never
//!    copies of the graph.
//!
//! Anchored plans are compiled with symmetry breaking off (a pinned edge
//! is incompatible with a global partial order on pattern vertices), so
//! stage counts are *embedding* counts; when the engine is configured for
//! canonical counting the totals divide by the automorphism group order —
//! the group acts freely on embeddings and preserves the set of data edges
//! used, so both deltas are exactly divisible.
//!
//! Vertex-induced mode is rejected outright: deleting an edge can *create*
//! induced embeddings that contain no update edge at all, which no
//! anchored enumeration can see.

use crate::config::EngineConfig;
use crate::engine::{AnchorCtx, Engine};
use crate::pool::WarmSlot;
use stmatch_gpusim::LaunchError;
use stmatch_graph::{AppliedBatch, Graph, VertexId};
use stmatch_pattern::{symmetry, MatchPlan, Pattern, PlanOptions};

/// Net effect of one update batch on a pattern's match count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatchDelta {
    /// Matches present after the batch but not before.
    pub added: u64,
    /// Matches present before the batch but not after.
    pub removed: u64,
}

impl MatchDelta {
    /// Signed net change, for folding into a running total.
    pub fn net(&self) -> i64 {
        self.added as i64 - self.removed as i64
    }
}

/// Anchored plans for one pattern: one per unordered pattern edge, plus
/// the bookkeeping needed to convert embedding counts back to the
/// engine's counting convention. Compile once ([`Engine::compile_delta`]),
/// reuse across every batch.
pub struct DeltaPlans {
    k: usize,
    /// `|Aut(P)|`: divisor when the engine counts canonical matches.
    aut: u64,
    /// `(p, q, plan)` with the plan's order starting `[p, q, ...]`.
    anchored: Vec<(usize, usize, MatchPlan)>,
}

impl DeltaPlans {
    /// Pattern size the plans were compiled for.
    pub fn num_levels(&self) -> usize {
        self.k
    }

    /// Number of anchored plans (= the pattern's edge count).
    pub fn num_plans(&self) -> usize {
        self.anchored.len()
    }
}

impl Engine {
    /// Compiles the anchored plan set for incremental matching of
    /// `pattern` under this engine's options (vertex-induced mode is
    /// rejected at [`Engine::run_delta_plans`] time).
    pub fn compile_delta(&self, pattern: &Pattern) -> DeltaPlans {
        let opts = PlanOptions {
            induced: false,
            code_motion: self.config().code_motion,
            // compile_anchored forces this off; spelled out for clarity.
            symmetry_breaking: false,
        };
        let mut anchored = Vec::new();
        for p in 0..pattern.size() {
            for q in p + 1..pattern.size() {
                if pattern.has_edge(p, q) {
                    anchored.push((p, q, MatchPlan::compile_anchored(pattern, (p, q), opts)));
                }
            }
        }
        DeltaPlans {
            k: pattern.size(),
            aut: symmetry::automorphism_count(pattern) as u64,
            anchored,
        }
    }

    /// [`Engine::run_delta_plans`] with one-shot plan compilation.
    pub fn run_delta(
        &self,
        pre: &Graph,
        post: &Graph,
        batch: &AppliedBatch,
        pattern: &Pattern,
    ) -> Result<MatchDelta, LaunchError> {
        let plans = self.compile_delta(pattern);
        self.run_delta_plans(pre, post, batch, &plans)
    }

    /// Counts the embeddings `batch` destroyed (enumerated against `pre`,
    /// the graph before the batch) and created (against `post`, the graph
    /// after), in O(batch × affected neighborhoods) work — the graph size
    /// only enters through the degrees of the touched vertices.
    ///
    /// Requires [`EngineConfig::delta`] to be enabled and edge-induced
    /// matching (see the module docs for why vertex-induced deltas cannot
    /// be anchored).
    pub fn run_delta_plans(
        &self,
        pre: &Graph,
        post: &Graph,
        batch: &AppliedBatch,
        plans: &DeltaPlans,
    ) -> Result<MatchDelta, LaunchError> {
        Ok(self.run_delta_plans_metered(pre, post, batch, plans)?.0)
    }

    /// [`Engine::run_delta_plans`] plus the total simulated SIMT
    /// instructions its anchored launches executed — the work measure the
    /// `smoke:delta` bench gate compares against full recomputation (host
    /// wall-clock on the simulator is dominated by per-launch scheduling,
    /// not by the matching work the paper's claim is about).
    pub fn run_delta_plans_metered(
        &self,
        pre: &Graph,
        post: &Graph,
        batch: &AppliedBatch,
        plans: &DeltaPlans,
    ) -> Result<(MatchDelta, u64), LaunchError> {
        let cfg = self.config();
        assert!(
            cfg.delta.enabled,
            "incremental matching requires EngineConfig::with_delta(true)"
        );
        assert!(
            !cfg.induced,
            "incremental matching is edge-induced only: deleting an edge can \
             create vertex-induced embeddings containing no update edge, which \
             anchored enumeration cannot see"
        );
        if batch.is_empty() || plans.anchored.is_empty() {
            // Vertex patterns (k = 1) never change under edge updates, and
            // a batch that netted out changes nothing.
            return Ok((MatchDelta::default(), 0));
        }
        // Right-size the launch: a two-vertex level-0 domain has no use
        // for a service-sized grid, and the auxiliary subsystems (hub
        // routing, sharding, static verification, bytecode tiering) are
        // pure overhead at this scale.
        let mut dcfg: EngineConfig = *cfg;
        dcfg.grid = cfg.delta.grid;
        dcfg.hub_bitmap.enabled = false;
        dcfg.shard.enabled = false;
        dcfg.verify.enabled = false;
        dcfg.compile.enabled = false;
        let sub = Engine::new(dcfg);
        // One warm slot amortizes warp-thread spawn and arena allocation
        // across every (plan × update edge) launch of the batch.
        let warm = WarmSlot::new(dcfg.grid)?;

        let mut instructions = 0u64;
        let mut removed = 0u64;
        for (i, &edge) in batch.deletes.iter().enumerate() {
            let view = pre.without_edges(&batch.deletes[..i]);
            let (n, instr) = self.anchored_count(&sub, &view, plans, edge, &warm)?;
            removed += n;
            instructions += instr;
        }
        let mut added = 0u64;
        for (i, &edge) in batch.inserts.iter().enumerate() {
            let view = post.without_edges(&batch.inserts[i + 1..]);
            let (n, instr) = self.anchored_count(&sub, &view, plans, edge, &warm)?;
            added += n;
            instructions += instr;
        }

        if cfg.symmetry_breaking {
            debug_assert!(
                added.is_multiple_of(plans.aut) && removed.is_multiple_of(plans.aut),
                "anchored embedding deltas must divide |Aut| = {}",
                plans.aut
            );
            added /= plans.aut;
            removed /= plans.aut;
        }
        Ok((MatchDelta { added, removed }, instructions))
    }

    /// Embeddings in `view` containing the data edge `(a, b)` plus the
    /// simulated instructions spent finding them: one anchored launch per
    /// pattern edge, level 0 pinned to `[a, b]`.
    fn anchored_count(
        &self,
        sub: &Engine,
        view: &Graph,
        plans: &DeltaPlans,
        (a, b): (VertexId, VertexId),
        warm: &WarmSlot,
    ) -> Result<(u64, u64), LaunchError> {
        let map: [VertexId; 2] = [a, b];
        let pins: [(VertexId, VertexId); 2] = [(a, b), (b, a)];
        let anchor = AnchorCtx {
            map: &map,
            pins: &pins,
        };
        let mut total = 0u64;
        let mut instructions = 0u64;
        for (_, _, plan) in &plans.anchored {
            let out = sub.run_anchored(view, plan, &anchor, Some(warm))?;
            total += out.count;
            instructions += out.metrics.total().simt_instructions;
        }
        Ok((total, instructions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stmatch_graph::{gen, DeltaOverlay, EdgeOp};
    use stmatch_pattern::catalog;

    fn engine() -> Engine {
        Engine::new(EngineConfig::default().with_delta(true))
    }

    /// Oracle: applying `ops` to a PA graph, the delta must reconcile the
    /// full recomputed counts before and after, and when the batch is
    /// delete-only / insert-only the opposite side must be zero.
    fn check_against_recompute(base: Graph, ops: &[EdgeOp], pattern: &Pattern) {
        let e = engine();
        let before = e.run(&base, pattern).expect("pre count").count;
        let mut overlay = DeltaOverlay::new(base);
        let pre = overlay.snapshot();
        let batch = overlay.apply(ops);
        let post = overlay.snapshot();
        let after = e.run(&post, pattern).expect("post count").count;
        let delta = e.run_delta(&pre, &post, &batch, pattern).expect("delta");
        assert_eq!(
            before as i64 + delta.net(),
            after as i64,
            "delta {delta:?} does not reconcile {before} -> {after}"
        );
        if batch.inserts.is_empty() {
            assert_eq!(delta.added, 0, "delete-only batch added matches");
        }
        if batch.deletes.is_empty() {
            assert_eq!(delta.removed, 0, "insert-only batch removed matches");
        }
    }

    fn fixture() -> Graph {
        gen::preferential_attachment(32, 3, 7).degree_ordered()
    }

    #[test]
    fn single_insert_and_delete_reconcile_for_triangles() {
        let g = fixture();
        // Find one absent and one present edge deterministically.
        let present = (g.neighbors(0)[0], 0);
        let absent = (0..g.num_vertices() as u32)
            .flat_map(|u| (u + 1..g.num_vertices() as u32).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(u, v))
            .expect("graph is not complete");
        check_against_recompute(
            g.clone(),
            &[EdgeOp::insert(absent.0, absent.1)],
            &catalog::triangle(),
        );
        check_against_recompute(
            g,
            &[EdgeOp::delete(present.0, present.1)],
            &catalog::triangle(),
        );
    }

    #[test]
    fn mixed_batch_reconciles_across_query_shapes() {
        let g = fixture();
        let n = g.num_vertices() as u32;
        let mut ops = Vec::new();
        // A deterministic mixed batch: toggle a band of vertex pairs.
        for u in 0..6u32 {
            for v in (u + 1..n).step_by(5) {
                if g.has_edge(u, v) {
                    ops.push(EdgeOp::delete(u, v));
                } else {
                    ops.push(EdgeOp::insert(u, v));
                }
            }
        }
        for q in [
            catalog::triangle(),
            catalog::path(3),
            catalog::clique(4),
            catalog::paper_query(5),
        ] {
            check_against_recompute(g.clone(), &ops, &q);
        }
    }

    #[test]
    fn labeled_patterns_reconcile() {
        let g = gen::assign_random_labels(&fixture(), 4, 11);
        let ops = [
            EdgeOp::insert(0, 31),
            EdgeOp::delete(g.neighbors(2)[0], 2),
            EdgeOp::insert(1, 30),
        ];
        let ops: Vec<EdgeOp> = ops
            .into_iter()
            .filter(|op| g.has_edge(op.u, op.v) != op.insert)
            .collect();
        for q in [
            catalog::triangle().with_random_labels(4, 3),
            catalog::path(4).with_random_labels(4, 9),
        ] {
            check_against_recompute(g.clone(), &ops, &q);
        }
    }

    #[test]
    fn edge_pattern_delta_is_the_batch_size() {
        let g = fixture();
        let absent = (0..g.num_vertices() as u32)
            .flat_map(|u| (u + 1..g.num_vertices() as u32).map(move |v| (u, v)))
            .filter(|&(u, v)| !g.has_edge(u, v))
            .take(3)
            .collect::<Vec<_>>();
        let ops: Vec<EdgeOp> = absent.iter().map(|&(u, v)| EdgeOp::insert(u, v)).collect();
        check_against_recompute(g, &ops, &catalog::path(2));
    }

    #[test]
    fn insert_then_delete_same_edge_nets_to_zero() {
        let g = fixture();
        let absent = (0..g.num_vertices() as u32)
            .flat_map(|u| (u + 1..g.num_vertices() as u32).map(move |v| (u, v)))
            .find(|&(u, v)| !g.has_edge(u, v))
            .expect("graph is not complete");
        let e = engine();
        let mut overlay = DeltaOverlay::new(g);
        let pre = overlay.snapshot();
        let batch = overlay.apply(&[
            EdgeOp::insert(absent.0, absent.1),
            EdgeOp::delete(absent.0, absent.1),
        ]);
        assert!(batch.is_empty(), "in-batch cancellation nets to nothing");
        let post = overlay.snapshot();
        let delta = e
            .run_delta(&pre, &post, &batch, &catalog::triangle())
            .expect("delta");
        assert_eq!(delta, MatchDelta::default());
    }

    #[test]
    #[should_panic(expected = "edge-induced only")]
    fn induced_mode_is_rejected() {
        let mut cfg = EngineConfig::default().with_delta(true);
        cfg.induced = true;
        let e = Engine::new(cfg);
        let g = fixture();
        let mut overlay = DeltaOverlay::new(g);
        let pre = overlay.snapshot();
        let batch = overlay.apply(&[EdgeOp::delete(overlay.base().neighbors(0)[0], 0)]);
        let post = overlay.snapshot();
        let _ = e.run_delta(&pre, &post, &batch, &catalog::triangle());
    }

    #[test]
    #[should_panic(expected = "with_delta")]
    fn delta_disabled_is_rejected() {
        let e = Engine::new(EngineConfig::default());
        let g = fixture();
        let mut overlay = DeltaOverlay::new(g);
        let pre = overlay.snapshot();
        let batch = overlay.apply(&[EdgeOp::insert(0, 31)]);
        let post = overlay.snapshot();
        let _ = e.run_delta(&pre, &post, &batch, &catalog::triangle());
    }
}
