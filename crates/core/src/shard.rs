//! Sharded multi-grid execution with shard-death recovery (DESIGN.md §4i).
//!
//! A *shard* is one independent grid working a slice of the level-0
//! domain. Unlike the strided [`run_partition`](crate::Engine::
//! run_partition) path — which fixes each device's slice at launch and
//! cannot rebalance — shards share a [`ShardRail`]: every shard's slice
//! lives on the rail as chunk ranges over one global *permutation* of the
//! level-0 vertices, so ranges (and reclaimed stack payloads) stay
//! portable across shards. Three mechanisms ride on that portability:
//!
//! * **Work-aware partitioning** ([`ShardPlan::work_aware`]): the domain
//!   is split by the degree/triangle weight proxy of
//!   [`stmatch_graph::stats::level0_weights`] (LPT assignment), not by
//!   position, so a skew-heavy graph does not hand one shard all the
//!   hubs. [`ShardPlan::contiguous`] keeps the positional split for
//!   comparison.
//! * **Cross-shard stealing**: a shard that drains its own slice steals
//!   half the largest remaining slice over the rail
//!   ([`ShardRail::claim`]), at a fixed +512 SIMT-instruction receive
//!   cost per stolen chunk (the device-to-device copy analogue).
//! * **Shard-death recovery**: when a whole shard grid dies (injected
//!   via [`FaultPlan::shard_kill_at`](crate::fault::FaultPlan) or real),
//!   its reclaimed payloads land back on the rail for live siblings; the
//!   slice it never claimed was on the rail all along. Whatever survives
//!   the join is relaunched through a bounded, count-invariant ladder
//!   ([`ShardStep`]): halve the shard count per round
//!   ([`RecoveryPolicy::shard_retries`](crate::RecoveryPolicy) rounds,
//!   injection off), then one cold single-grid pass.
//!
//! Everything is gated behind [`EngineConfig::shard`](crate::EngineConfig)
//! (off by default); the facade in [`crate::multi`] routes to this module
//! when the knob is on.

use crate::engine::{Engine, MatchOutcome, ShardCtx};
use crate::fault::{FaultPlan, FaultReport};
use crate::recover::ShardStep;
use crate::steal::{RailStats, ShardRail};
use std::sync::Arc;
use stmatch_gpusim::{GridMetrics, LaunchError};
use stmatch_graph::{stats, Graph, VertexId};
use stmatch_pattern::{MatchPlan, Pattern};

/// How the level-0 domain is split across shards: one global permutation
/// of the vertices plus cut points. Shard `s` owns the virtual indices
/// `cuts[s]..cuts[s+1]` of `order`; the kernel maps a virtual index `i`
/// back to the data vertex `order[i]`. Keeping chunk ranges virtual is
/// what makes them portable across shards (steals and requeues never
/// re-translate).
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// `order[virtual_index] = vertex_id`.
    pub order: Vec<VertexId>,
    /// `shards + 1` cut points into `order`, `cuts[0] == 0`,
    /// `cuts[shards] == order.len()`.
    pub cuts: Vec<usize>,
}

impl ShardPlan {
    /// Positional split: identity order, near-equal slice widths. On a
    /// degree-ordered graph this hands every hub to shard 0 — kept as
    /// the baseline the work-aware split is benchmarked against.
    pub fn contiguous(graph: &Graph, shards: usize) -> ShardPlan {
        assert!(shards >= 1);
        let n = graph.num_vertices();
        let order: Vec<VertexId> = graph.vertices().collect();
        let base = n / shards;
        let rem = n % shards;
        let mut cuts = Vec::with_capacity(shards + 1);
        let mut at = 0usize;
        cuts.push(0);
        for s in 0..shards {
            at += base + usize::from(s < rem);
            cuts.push(at);
        }
        ShardPlan { order, cuts }
    }

    /// Work-aware split: longest-processing-time assignment of vertices
    /// (heaviest first, each to the currently lightest shard) under the
    /// per-root weight proxy of [`stats::level0_weights`] — degree plus
    /// bounded intersection work, the dominant cost of expanding that
    /// root. Deterministic: ties break on vertex id, then lowest shard.
    pub fn work_aware(graph: &Graph, shards: usize) -> ShardPlan {
        ShardPlan::work_aware_with_weights(graph, shards, &stats::level0_weights(graph))
    }

    /// [`ShardPlan::work_aware`] with caller-supplied per-root weights —
    /// the incremental-service path: a tracked
    /// [`stmatch_graph::DeltaOverlay`] keeps the weight vector adjusted
    /// per batch ([`stats::adjust_level0_weights`], touched vertices
    /// only), so sharded queries between batches skip the O(graph)
    /// recompute. `weights[v]` must cover every vertex of `graph`.
    pub fn work_aware_with_weights(graph: &Graph, shards: usize, weights: &[u64]) -> ShardPlan {
        assert!(shards >= 1);
        assert_eq!(weights.len(), graph.num_vertices(), "one weight per vertex");
        let mut verts: Vec<VertexId> = graph.vertices().collect();
        verts.sort_by(|&a, &b| {
            weights[b as usize]
                .cmp(&weights[a as usize])
                .then(a.cmp(&b))
        });
        let mut loads = vec![0u64; shards];
        let mut buckets: Vec<Vec<VertexId>> = vec![Vec::new(); shards];
        for v in verts {
            let s = (0..shards).min_by_key(|&s| loads[s]).expect("shards >= 1");
            loads[s] += weights[v as usize];
            buckets[s].push(v);
        }
        let mut order = Vec::with_capacity(graph.num_vertices());
        let mut cuts = Vec::with_capacity(shards + 1);
        cuts.push(0);
        for b in buckets {
            order.extend(b);
            cuts.push(order.len());
        }
        ShardPlan { order, cuts }
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.cuts.len() - 1
    }

    /// Total weight each shard was assigned under `weights` (used by the
    /// bench harness to report split balance).
    pub fn shard_loads(&self, weights: &[u64]) -> Vec<u64> {
        (0..self.num_shards())
            .map(|s| {
                self.order[self.cuts[s]..self.cuts[s + 1]]
                    .iter()
                    .map(|&v| weights[v as usize])
                    .sum()
            })
            .collect()
    }

    /// Static exactly-once coverage check
    /// ([`stmatch_plan_verify::check_shard_cover`]): the cuts must tile
    /// `order` monotonically and `order` must visit each of the graph's
    /// `num_vertices` vertices exactly once. Empty means the plan covers
    /// the level-0 domain; diagnostics name the offending vertex or cut.
    pub fn verify_cover(
        &self,
        num_vertices: usize,
        repro: &str,
    ) -> Vec<stmatch_plan_verify::Diagnostic> {
        stmatch_plan_verify::check_shard_cover(&self.order, &self.cuts, num_vertices, repro)
    }
}

/// Seeded shard-plan mutations for the static verifier's kill gate (see
/// `ci.sh smoke:verify`): deliberately corrupt a [`ShardPlan`] the way a
/// partitioning bug would, so the coverage check can be shown to catch it
/// *by name*. Never called on production paths.
pub mod mutation {
    use super::ShardPlan;
    use stmatch_graph::VertexId;

    /// Makes shard boundaries overlap on a vertex: the first vertex of
    /// shard 1's slice is overwritten with shard 0's first vertex, so one
    /// vertex is owned twice and the overwritten one is never expanded.
    /// Returns `(duplicated, orphaned)`, or `None` when the plan is too
    /// small to mutate (fewer than two shards or two vertices).
    pub fn overlap_cut(plan: &mut ShardPlan) -> Option<(VertexId, VertexId)> {
        let at = *plan.cuts.get(1)?;
        if plan.num_shards() < 2 || at == 0 || at >= plan.order.len() {
            return None;
        }
        let duplicated = plan.order[0];
        let orphaned = std::mem::replace(&mut plan.order[at], duplicated);
        Some((duplicated, orphaned))
    }
}

/// Result of a sharded run: the merged outcome plus shard-level
/// bookkeeping mirroring what [`FaultReport`] records per grid.
#[derive(Clone, Debug)]
pub struct ShardedOutcome {
    /// Merged outcome. `count` sums every round (shard grids, recovery
    /// rounds, fallback); `metrics.warps` is the *concatenation* of all
    /// per-warp counters, so
    /// [`simulated_cycles`](MatchOutcome::simulated_cycles) is the true
    /// global bottleneck (the slowest warp of any shard), not a per-slot
    /// sum.
    pub outcome: MatchOutcome,
    /// Round-0 per-shard outcomes, indexed by shard.
    pub per_shard: Vec<MatchOutcome>,
    /// Shard count of round 0.
    pub shards: usize,
    /// Rail traffic accumulated over all rounds: cross-shard steals,
    /// requeue pushes/claims, shard deaths observed.
    pub rail: RailStats,
    /// Recovery rounds run after the initial join (0 for clean runs).
    pub recovery_rounds: u32,
    /// Shard-ladder rungs taken, in order.
    pub degradations: Vec<ShardStep>,
    /// Reproduce line of the active fault plan, if any (`FAULT_SEED=…`
    /// for seeded plans, `SHARD_KILLS=…` for hand-built kills).
    pub reproduce: Option<String>,
    /// Virtual level-0 ranges (over [`ShardPlan::order`]) still on the
    /// rail when the driver stopped — non-empty only for timed-out runs
    /// or an interrupted fallback, where `outcome.count` is a partial
    /// lower bound. Reclaimed payloads that also remained are counted in
    /// the fault report's `unrecovered`, not here (they are subtree
    /// stacks, not ranges).
    pub unfinished: Vec<(usize, usize)>,
}

impl Engine {
    /// Sharded run of `pattern`: compiles and calls
    /// [`Engine::run_plan_sharded`].
    pub fn run_sharded(
        &self,
        graph: &Graph,
        pattern: &Pattern,
    ) -> Result<ShardedOutcome, LaunchError> {
        let plan = self.compile(pattern);
        self.run_plan_sharded(graph, &plan)
    }

    /// Runs `plan` across [`EngineConfig::shard`](crate::EngineConfig)
    /// `.shards` grids sharing one [`ShardRail`], then drives the
    /// recovery ladder until the rail is drained (or the retry budget
    /// ends in the cold single-grid fallback). Counts are exact whenever
    /// the merged report says
    /// [`fully_recovered`](FaultReport::fully_recovered) — the same
    /// contract as the single-grid fault path.
    ///
    /// An attached [`FaultPlan`](crate::FaultPlan) is re-scoped per
    /// shard: shard kills expand to every warp of the victim grid, and
    /// warp-level faults replicate to each shard. Recovery rounds always
    /// run with injection off.
    pub fn run_plan_sharded(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
    ) -> Result<ShardedOutcome, LaunchError> {
        self.run_plan_sharded_weighted(graph, plan, None)
    }

    /// [`Engine::run_plan_sharded`] with caller-maintained level-0
    /// weights for the work-aware split (see
    /// [`ShardPlan::work_aware_with_weights`]); `None` recomputes them
    /// from the graph.
    pub fn run_plan_sharded_weighted(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        weights: Option<&[u64]>,
    ) -> Result<ShardedOutcome, LaunchError> {
        let cfg = *self.config();
        cfg.validate();
        let tuning = cfg.shard;
        let shards = tuning.shards;
        let splan = if tuning.work_aware {
            match weights {
                Some(w) => ShardPlan::work_aware_with_weights(graph, shards, w),
                None => ShardPlan::work_aware(graph, shards),
            }
        } else {
            ShardPlan::contiguous(graph, shards)
        };
        let reproduce = self.fault_plan().and_then(FaultPlan::shard_reproduce_line);
        if cfg.verify.enabled {
            // Static coverage certificate for the split (DESIGN.md §4j):
            // both built-in partitioners tile the domain by construction,
            // so any diagnostic here is a partitioning bug — fail loudly
            // in debug builds before a wrong count escapes.
            let diags = splan.verify_cover(
                graph.num_vertices(),
                &format!(
                    "Engine::run_plan_sharded on graph '{}' with {} shards, \
                     work_aware={}, EngineConfig::with_verify(true)",
                    graph.name(),
                    shards,
                    tuning.work_aware,
                ),
            );
            debug_assert!(
                diags.is_empty(),
                "shard plan fails exactly-once coverage: {}",
                diags[0]
            );
        }

        let rail = Arc::new(ShardRail::new(
            &splan.cuts,
            cfg.chunk_size,
            tuning.cross_steal,
        ));
        let per_shard = self.shard_round(graph, plan, &splan.order, &rail, true)?;
        let mut rail_stats = rail.stats();
        let mut merged = merge_round(&per_shard, reproduce.clone());

        // --- Shard recovery ladder: drain what the join left behind. ---
        let mut degradations: Vec<ShardStep> = Vec::new();
        let mut recovery_rounds = 0u32;
        let mut cur_shards = shards;
        let mut live_rail = rail;
        let mut unfinished: Vec<(usize, usize)> = Vec::new();
        loop {
            let (ranges, payloads) = live_rail.drain_remaining();
            if ranges.is_empty() && payloads.is_empty() {
                break;
            }
            if merged.timed_out {
                // Past the deadline the count is partial by contract;
                // leftovers are reported, not relaunched.
                report_mut(&mut merged).unrecovered += ranges.len() + payloads.len();
                unfinished = ranges;
                break;
            }
            let step = if recovery_rounds >= cfg.recovery.shard_retries || cur_shards <= 1 {
                ShardStep::SingleGrid
            } else {
                ShardStep::FewerShards {
                    from: cur_shards,
                    to: (cur_shards / 2).max(1),
                }
            };
            let next = match step {
                ShardStep::FewerShards { to, .. } => to,
                ShardStep::SingleGrid => 1,
            };
            degradations.push(step);
            recovery_rounds += 1;
            live_rail = Arc::new(ShardRail::from_parts(
                next,
                cfg.chunk_size,
                tuning.cross_steal,
                ranges,
                payloads,
            ));
            let round = self.shard_round(graph, plan, &splan.order, &live_rail, false)?;
            accumulate(&mut rail_stats, live_rail.stats());
            merge_into(&mut merged, &round);
            cur_shards = next;
            if matches!(step, ShardStep::SingleGrid) {
                // The ladder's last rung: whatever a timed-out or
                // containment-failed fallback leaves is unrecovered.
                let (r, p) = live_rail.drain_remaining();
                if !r.is_empty() || !p.is_empty() {
                    report_mut(&mut merged).unrecovered += r.len() + p.len();
                    unfinished = r;
                }
                break;
            }
        }
        if let Some(f) = merged.fault.as_ref() {
            debug_assert!(
                f.reproduce.is_some() || self.fault_plan().is_none_or(|p| !p.kills_shards()),
                "shard-death reports must carry a reproduce line"
            );
        }
        Ok(ShardedOutcome {
            outcome: merged,
            per_shard,
            shards,
            rail: rail_stats,
            recovery_rounds,
            degradations,
            reproduce,
            unfinished,
        })
    }

    /// One round: a driver thread per shard, each running its grid
    /// against the shared rail. Joins all shards before returning
    /// (shards that drain early keep stealing until the rail has nothing
    /// claimable for them).
    fn shard_round(
        &self,
        graph: &Graph,
        plan: &MatchPlan,
        order: &[VertexId],
        rail: &Arc<ShardRail>,
        inject: bool,
    ) -> Result<Vec<MatchOutcome>, LaunchError> {
        let shards = rail.num_shards();
        let total_warps = self.config().grid.total_warps();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|sh| {
                    scope.spawn(move || {
                        // Per-shard engine: same config and timeout; the
                        // fault plan is re-scoped so a shard kill only
                        // reaches its victim grid.
                        let mut e = Engine::new(*self.config());
                        if let Some(t) = self.timeout_budget() {
                            e = e.with_timeout(t);
                        }
                        if inject {
                            if let Some(fp) = self.fault_plan() {
                                let scoped = fp.for_shard(sh, total_warps);
                                if !scoped.is_empty() {
                                    e = e.with_fault_plan(scoped);
                                }
                            }
                        }
                        let ctx = ShardCtx {
                            rail,
                            shard: sh,
                            map: order,
                        };
                        e.run_sharded_pass(graph, plan, &ctx)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard driver thread panicked"))
                .collect()
        })
    }
}

/// Ensures the merged outcome carries a fault report and returns it.
fn report_mut(o: &mut MatchOutcome) -> &mut FaultReport {
    o.fault.get_or_insert_with(FaultReport::default)
}

/// Field-wise sum of two rail-traffic snapshots.
fn accumulate(into: &mut RailStats, s: RailStats) {
    into.cross_steals += s.cross_steals;
    into.requeue_pushes += s.requeue_pushes;
    into.requeue_claims += s.requeue_claims;
    into.shard_deaths += s.shard_deaths;
}

/// Merges one round's per-shard outcomes into a fresh outcome. Warp
/// metric vectors are concatenated (not summed pairwise): the merged
/// `simulated_cycles` must be the max over *all* warps of *all* shards,
/// the quantity the scaling bench calls bottleneck time.
fn merge_round(round: &[MatchOutcome], reproduce: Option<String>) -> MatchOutcome {
    let first = round.first().expect("at least one shard");
    let mut merged = MatchOutcome {
        count: 0,
        metrics: GridMetrics::default(),
        shared_bytes_per_block: first.shared_bytes_per_block,
        stack_bytes: first.stack_bytes,
        num_sets: first.num_sets,
        timed_out: false,
        fault: None,
        downgrades: Vec::new(),
        spill_events: 0,
        peak_slab_cells: 0,
        served_tier: first.served_tier,
        l0_uncovered: None,
    };
    if let Some(r) = reproduce {
        report_mut(&mut merged).reproduce = Some(r);
    }
    merge_into(&mut merged, round);
    // A clean merge should not pin a report just for the reproduce line.
    if merged.fault.as_ref().is_some_and(FaultReport::is_clean) {
        merged.fault = None;
    }
    merged
}

/// Folds `round` into `merged`: counts and traffic sum, warp vectors
/// concatenate, wall time takes the round's parallel max.
fn merge_into(merged: &mut MatchOutcome, round: &[MatchOutcome]) {
    let mut round_elapsed = 0u64;
    for o in round {
        merged.count += o.count;
        merged.metrics.warps.extend(o.metrics.warps.iter().copied());
        merged.metrics.kernel_launches += o.metrics.kernel_launches;
        merged.metrics.contained_panics += o.metrics.contained_panics;
        round_elapsed = round_elapsed.max(o.metrics.elapsed_nanos);
        merged.timed_out |= o.timed_out;
        merged.downgrades.extend(o.downgrades.iter().copied());
        merged.spill_events += o.spill_events;
        // Max, not sum: the peak is a per-warp high-water mark, and the
        // merged outcome reports the worst warp across every shard.
        merged.peak_slab_cells = merged.peak_slab_cells.max(o.peak_slab_cells);
        if let Some(f) = &o.fault {
            let r = report_mut(merged);
            r.deaths.extend(f.deaths.iter().cloned());
            r.requeued += f.requeued;
            r.salvage_launches += f.salvage_launches;
            r.unrecovered += f.unrecovered;
            r.escaped_panics += f.escaped_panics;
        }
    }
    // Shards of one round run in parallel; successive rounds serialize.
    merged.metrics.elapsed_nanos += round_elapsed;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::fault::FaultPlan;
    use stmatch_gpusim::GridConfig;
    use stmatch_graph::gen;
    use stmatch_pattern::catalog;

    fn small_grid() -> GridConfig {
        GridConfig {
            num_blocks: 2,
            warps_per_block: 2,
            shared_mem_per_block: stmatch_gpusim::SharedBudget::RTX3090_BYTES,
        }
    }

    fn skewed() -> Graph {
        gen::preferential_attachment(120, 4, 7).degree_ordered()
    }

    #[test]
    fn shard_plan_partitions_the_domain() {
        let g = skewed();
        for shards in [1, 3, 4, 7] {
            for plan in [
                ShardPlan::contiguous(&g, shards),
                ShardPlan::work_aware(&g, shards),
            ] {
                assert_eq!(plan.num_shards(), shards);
                assert_eq!(plan.cuts[0], 0);
                assert_eq!(*plan.cuts.last().unwrap(), g.num_vertices());
                assert!(plan.cuts.windows(2).all(|w| w[0] <= w[1]));
                // The order must be a permutation of the vertex set.
                let mut sorted = plan.order.clone();
                sorted.sort_unstable();
                let all: Vec<VertexId> = g.vertices().collect();
                assert_eq!(sorted, all);
            }
        }
    }

    #[test]
    fn work_aware_split_balances_skew_better() {
        let g = skewed();
        let w = stats::level0_weights(&g);
        let shards = 4;
        let spread = |loads: &[u64]| loads.iter().max().unwrap() - loads.iter().min().unwrap();
        let contiguous = ShardPlan::contiguous(&g, shards).shard_loads(&w);
        let aware = ShardPlan::work_aware(&g, shards).shard_loads(&w);
        assert_eq!(
            contiguous.iter().sum::<u64>(),
            aware.iter().sum::<u64>(),
            "both splits cover the same total weight"
        );
        assert!(
            spread(&aware) < spread(&contiguous),
            "LPT must beat positional on a degree-ordered skewed graph: {aware:?} vs {contiguous:?}"
        );
    }

    #[test]
    fn sharded_counts_match_single_grid() {
        let g = skewed();
        let base = Engine::new(EngineConfig::default().with_grid(small_grid()));
        for q in [1, 6, 8] {
            let p = catalog::paper_query(q);
            let expected = base.run(&g, &p).unwrap().count;
            for shards in [1, 2, 4] {
                for work_aware in [false, true] {
                    let mut cfg = EngineConfig::default()
                        .with_grid(small_grid())
                        .with_shards(shards);
                    cfg.shard.work_aware = work_aware;
                    let out = Engine::new(cfg).run_sharded(&g, &p).unwrap();
                    assert_eq!(
                        out.outcome.count, expected,
                        "q{q} shards={shards} work_aware={work_aware}"
                    );
                    assert!(out.recovery_rounds == 0 && out.degradations.is_empty());
                    assert_eq!(out.per_shard.len(), shards);
                }
            }
        }
    }

    #[test]
    fn shard_kill_recovers_exactly() {
        let g = skewed();
        let p = catalog::paper_query(6);
        let base = Engine::new(EngineConfig::default().with_grid(small_grid()));
        let expected = base.run(&g, &p).unwrap().count;
        let cfg = EngineConfig::default()
            .with_grid(small_grid())
            .with_shards(4);
        let plan = FaultPlan::seeded_shard_kill(0x5eed, 4, 1);
        let out = Engine::new(cfg)
            .with_fault_plan(plan)
            .run_sharded(&g, &p)
            .unwrap();
        assert_eq!(out.outcome.count, expected);
        let report = out.outcome.fault.as_ref().expect("deaths were injected");
        assert!(report.fully_recovered());
        assert!(report.deaths.len() >= small_grid().total_warps());
        assert!(report.reproduce.is_some(), "seeded plans carry a line");
        assert_eq!(out.rail.shard_deaths, 1);
        assert!(
            out.rail.requeue_pushes > 0 || out.rail.cross_steals > 0,
            "a killed shard's work must move somewhere"
        );
    }

    #[test]
    fn all_shards_dead_falls_back_to_single_grid() {
        let g = skewed();
        let p = catalog::paper_query(6);
        let base = Engine::new(EngineConfig::default().with_grid(small_grid()));
        let expected = base.run(&g, &p).unwrap().count;
        let mut cfg = EngineConfig::default()
            .with_grid(small_grid())
            .with_shards(2);
        cfg.recovery.shard_retries = 0; // straight to the cold fallback
        let plan = FaultPlan::new().shard_kill_at(0, 1).shard_kill_at(1, 1);
        let out = Engine::new(cfg)
            .with_fault_plan(plan)
            .run_sharded(&g, &p)
            .unwrap();
        assert_eq!(out.outcome.count, expected, "fallback stays count-exact");
        assert_eq!(out.degradations, vec![ShardStep::SingleGrid]);
        assert_eq!(out.recovery_rounds, 1);
        assert_eq!(out.rail.shard_deaths, 2);
        assert!(out.outcome.fault.as_ref().unwrap().fully_recovered());
    }

    #[test]
    fn recovery_ladder_halves_before_fallback() {
        let g = skewed();
        let p = catalog::paper_query(1);
        let base = Engine::new(EngineConfig::default().with_grid(small_grid()));
        let expected = base.run(&g, &p).unwrap().count;
        // Kill every shard so the join is guaranteed to leave work; the
        // first recovery round must be FewerShards under the default
        // retry budget.
        let mut cfg = EngineConfig::default()
            .with_grid(small_grid())
            .with_shards(4);
        cfg.shard.cross_steal = false; // no live sibling can absorb it
        let plan = FaultPlan::new()
            .shard_kill_at(0, 1)
            .shard_kill_at(1, 1)
            .shard_kill_at(2, 1)
            .shard_kill_at(3, 1);
        let out = Engine::new(cfg)
            .with_fault_plan(plan)
            .run_sharded(&g, &p)
            .unwrap();
        assert_eq!(out.outcome.count, expected);
        assert!(out.recovery_rounds >= 1);
        assert!(matches!(
            out.degradations[0],
            ShardStep::FewerShards { from: 4, to: 2 }
        ));
        assert!(out.outcome.fault.as_ref().unwrap().fully_recovered());
    }

    #[test]
    fn merged_cycles_are_global_bottleneck() {
        let g = skewed();
        let p = catalog::paper_query(6);
        let cfg = EngineConfig::default()
            .with_grid(small_grid())
            .with_shards(2);
        let out = Engine::new(cfg).run_sharded(&g, &p).unwrap();
        let per_shard_max = out
            .per_shard
            .iter()
            .map(MatchOutcome::simulated_cycles)
            .max()
            .unwrap();
        assert_eq!(out.outcome.simulated_cycles(), per_shard_max);
        assert_eq!(
            out.outcome.metrics.warps.len(),
            2 * small_grid().total_warps()
        );
    }
}
