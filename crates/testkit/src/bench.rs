//! Criterion-free bench timer.
//!
//! Exposes just enough of the criterion API surface — [`Criterion`],
//! [`BenchmarkId`], `benchmark_group`, `bench_function`,
//! `bench_with_input`, [`crate::criterion_group!`],
//! [`crate::criterion_main!`] — that the paper-figure benches under
//! `crates/bench/benches/` keep their structure, while the measurement
//! loop is a ~100-line in-tree timer:
//!
//! 1. **Warmup**: the routine runs repeatedly until `warm_up_time`
//!    elapses (at least once), which also calibrates the batch size.
//! 2. **Sampling**: `sample_size` samples are taken; each sample times a
//!    batch of iterations sized so the total measurement roughly fills
//!    `measurement_time`, and records mean nanoseconds per iteration.
//! 3. **Reporting**: median, p95 (nearest-rank), mean, and min go to
//!    stdout as an aligned human line *and* a JSON line, so
//!    `cargo bench` output can be scraped into BENCH_*.json trajectories
//!    with `grep '^{'`. Set `TESTKIT_BENCH_JSON=<path>` to also append
//!    the JSON lines to a file.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `group/function` or `group/function/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("stmatch", 8)` → `stmatch/8`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// `BenchmarkId::from_parameter(8)` → `8`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// The timer configuration (criterion's builder surface).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least 2 samples for a median");
        self.sample_size = n;
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warmup duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group; results are reported as `group/bench`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark; the routine drives [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            cfg: self.criterion.clone(),
            stats: None,
        };
        routine(&mut bencher);
        report(&self.name, &id.text, bencher.stats.as_ref());
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (kept for criterion API parity; reporting is
    /// per-benchmark and immediate).
    pub fn finish(self) {}
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Stats {
    pub median_ns: f64,
    pub p95_ns: f64,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

/// Passed to the benchmark routine; [`Bencher::iter`] performs the
/// warmup + sampling loop.
pub struct Bencher {
    cfg: Criterion,
    stats: Option<Stats>,
}

impl Bencher {
    /// Times `f`, keeping its output alive via `black_box` so the work
    /// is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: run until the warmup clock expires (at least once) and
        // estimate the per-iteration cost from it.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.cfg.warm_up_time {
                break;
            }
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters as f64).max(1.0);

        // Size each sample's batch so sample_size batches fill roughly
        // the measurement budget.
        let per_sample_ns =
            self.cfg.measurement_time.as_nanos() as f64 / self.cfg.sample_size as f64;
        let batch = ((per_sample_ns / est_ns).round() as u64).clamp(1, 1_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = samples_ns.len();
        let median = if n.is_multiple_of(2) {
            (samples_ns[n / 2 - 1] + samples_ns[n / 2]) / 2.0
        } else {
            samples_ns[n / 2]
        };
        let p95 = samples_ns[(((n as f64) * 0.95).ceil() as usize).clamp(1, n) - 1];
        self.stats = Some(Stats {
            median_ns: median,
            p95_ns: p95,
            mean_ns: samples_ns.iter().sum::<f64>() / n as f64,
            min_ns: samples_ns[0],
            samples: n,
            iters_per_sample: batch,
        });
    }
}

fn report(group: &str, bench: &str, stats: Option<&Stats>) {
    let name = format!("{group}/{bench}");
    let Some(s) = stats else {
        println!("{name}: no measurement (routine never called iter)");
        return;
    };
    println!(
        "{name}: median {} p95 {} mean {} min {} ({} samples x {} iters)",
        fmt_ns(s.median_ns),
        fmt_ns(s.p95_ns),
        fmt_ns(s.mean_ns),
        fmt_ns(s.min_ns),
        s.samples,
        s.iters_per_sample,
    );
    let json = format!(
        "{{\"name\":\"{name}\",\"median_ns\":{:.1},\"p95_ns\":{:.1},\"mean_ns\":{:.1},\
         \"min_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}}}",
        s.median_ns, s.p95_ns, s.mean_ns, s.min_ns, s.samples, s.iters_per_sample,
    );
    println!("{json}");
    if let Ok(path) = std::env::var("TESTKIT_BENCH_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(f, "{json}");
        }
    }
}

/// Human-readable nanoseconds: `842ns`, `13.4us`, `2.13ms`, `1.07s`.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Criterion-compatible group declaration: defines a function that runs
/// every target against the given config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut c = $cfg;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::bench::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Criterion-compatible main: runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn timer_produces_ordered_stats() {
        let mut c = quick();
        let mut group = c.benchmark_group("testkit_smoke");
        let mut captured: Option<Stats> = None;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            captured = b.stats.clone();
        });
        group.finish();
        let s = captured.expect("iter must record stats");
        assert!(s.min_ns <= s.median_ns);
        assert!(s.median_ns <= s.p95_ns);
        assert_eq!(s.samples, 5);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("stmatch", 8).text, "stmatch/8");
        assert_eq!(BenchmarkId::from_parameter(4).text, "4");
        assert_eq!(BenchmarkId::from("plain").text, "plain");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(900.0), "900ns");
        assert_eq!(fmt_ns(13_400.0), "13.4us");
        assert_eq!(fmt_ns(2_130_000.0), "2.13ms");
    }

    #[test]
    fn slow_routine_still_samples_with_unit_batches() {
        // A routine slower than measurement_time/sample_size must still
        // produce sample_size samples, with the batch clamped to 1.
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(3))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("slow");
        let mut captured: Option<Stats> = None;
        group.bench_function("sleepy", |b| {
            b.iter(|| std::thread::sleep(Duration::from_millis(2)));
            captured = b.stats.clone();
        });
        group.finish();
        let s = captured.unwrap();
        assert_eq!(s.iters_per_sample, 1);
        assert_eq!(s.samples, 3);
        assert!(s.median_ns >= 1_000_000.0);
    }
}
