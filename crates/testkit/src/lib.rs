//! Hermetic test and bench toolkit for the STMatch workspace.
//!
//! The build environment has no crates.io access, so everything the test
//! suite and bench harness need lives in-tree:
//!
//! * [`rng`] — a deterministic [`SplitMix64`](rng::SplitMix64) seeder
//!   feeding a [`Xoshiro256StarStar`](rng::Xoshiro256StarStar) generator,
//!   with a `rand`-compatible surface (`gen`, `gen_range`, `shuffle`,
//!   `fill`) so graph generators stay one-line ports.
//! * [`prop`] — a minimal property-testing harness: seeded case
//!   generation (`TESTKIT_CASES` / `TESTKIT_SEED` env vars), shrinking by
//!   halving for integer and vector inputs, and failure reports that print
//!   the reproducing seed.
//! * [`bench`] — a criterion-free bench timer (warmup + N timed samples,
//!   median/p95/mean/min, JSON-lines output) exposing enough of the
//!   criterion API (`Criterion`, `BenchmarkId`, `criterion_group!`,
//!   `criterion_main!`) that the paper-figure benches compile unchanged in
//!   structure.
//!
//! Everything here is `std`-only and fully deterministic given a seed, so
//! the BENCH_*.json trajectories and golden-count fixtures are
//! reproducible run-to-run and machine-to-machine.

pub mod bench;
pub mod prop;
pub mod rng;

pub use rng::{Rng, SmallRng};
