//! Deterministic pseudo-random number generation.
//!
//! Two classic generators, implemented from the reference C sources at
//! <https://prng.di.unimi.it/>:
//!
//! * [`SplitMix64`] — the canonical 64-bit state mixer, used to expand a
//!   `u64` seed into the larger Xoshiro state (and useful on its own for
//!   hashing-style derivation of per-case seeds).
//! * [`Xoshiro256StarStar`] — the general-purpose generator; 256 bits of
//!   state, excellent statistical quality, trivially fast.
//!
//! [`SmallRng`] aliases the Xoshiro generator so code ported from `rand`
//! (`SmallRng::seed_from_u64(..)`) keeps reading the same. The [`Rng`]
//! extension trait supplies the familiar `gen`, `gen_range`, `gen_bool`,
//! `shuffle`, `fill`, and `choose` surface.
//!
//! Determinism contract: given the same seed, every method here returns
//! the same sequence on every platform and every release of this crate.
//! The golden-count fixtures in `tests/golden_counts.rs` pin graph
//! structure generated through this module — changing any algorithm below
//! is a breaking change to those fixtures and must update them in the
//! same commit.

/// The canonical SplitMix64 mixer (Steele, Lea, Flood; used by
/// `java.util.SplittableRandom`). Passes BigCrush with 64 bits of state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the mixer from a seed. Any seed is fine, including 0.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// One-shot stateless mix: derives a well-distributed value from
    /// `seed` and `stream` (used to give every property-test case its own
    /// independent seed).
    pub fn mix(seed: u64, stream: u64) -> u64 {
        SplitMix64::new(seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15)).next_u64()
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna, 2018).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state by running SplitMix64 over `seed`, as the
    /// reference implementation recommends (avoids the all-zero state and
    /// decorrelates nearby seeds).
    pub fn seed_from_u64(seed: u64) -> Xoshiro256StarStar {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The workspace's default small, fast generator (mirrors
/// `rand::rngs::SmallRng` in role and call surface).
pub type SmallRng = Xoshiro256StarStar;

/// Types that can be sampled uniformly from the generator's raw output
/// (the `rand::distributions::Standard` role).
pub trait Standard: Sized {
    fn sample<R: RngSource + ?Sized>(rng: &mut R) -> Self;
}

/// Anything that yields raw 64-bit outputs. Implemented by both
/// generators; the [`Rng`] convenience trait is blanket-implemented on
/// top of it.
pub trait RngSource {
    fn raw_u64(&mut self) -> u64;
}

impl RngSource for SplitMix64 {
    #[inline]
    fn raw_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

impl RngSource for Xoshiro256StarStar {
    #[inline]
    fn raw_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngSource + ?Sized>(rng: &mut R) -> u64 {
        rng.raw_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngSource + ?Sized>(rng: &mut R) -> u32 {
        (rng.raw_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngSource + ?Sized>(rng: &mut R) -> usize {
        rng.raw_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngSource + ?Sized>(rng: &mut R) -> bool {
        // Top bit: the high bits of xoshiro256** are its best-mixed.
        rng.raw_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(x >> 11) * 2^-53` construction).
    #[inline]
    fn sample<R: RngSource + ?Sized>(rng: &mut R) -> f64 {
        (rng.raw_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngSource + ?Sized>(rng: &mut R) -> f32 {
        (rng.raw_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types that [`Rng::gen_range`] can sample.
pub trait UniformInt: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 { self as u64 }
            #[inline]
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Range argument accepted by [`Rng::gen_range`] (half-open `lo..hi` or
/// inclusive `lo..=hi`, matching the `rand` 0.8 call style).
pub trait SampleRange<T> {
    /// `(lo, span)` with `span >= 1`; panics on an empty range.
    fn bounds(&self) -> (u64, u64);
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn bounds(&self) -> (u64, u64) {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "gen_range called with empty range");
        (lo, hi - lo)
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn bounds(&self) -> (u64, u64) {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "gen_range called with empty range");
        (lo, (hi - lo).wrapping_add(1)) // span 0 encodes the full u64 range
    }
}

/// Convenience sampling surface over any [`RngSource`], mirroring the
/// parts of `rand::Rng` (plus `SliceRandom::shuffle`/`choose`) that the
/// workspace uses.
pub trait Rng: RngSource {
    /// Samples a value of type `T` from the standard distribution
    /// (`u32`/`u64`/`usize` uniform, `bool` fair coin, `f64` in `[0,1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform integer in the given range (`0..n` or `0..=n`). Uses
    /// Lemire-style rejection so the result is exactly uniform.
    fn gen_range<T: UniformInt, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let (lo, span) = range.bounds();
        if span == 0 {
            // Inclusive range covering all of u64.
            return T::from_u64(self.raw_u64());
        }
        // Multiply-shift with rejection of the biased low region.
        let zone = span.wrapping_neg() % span; // (2^64 mod span)
        loop {
            let x = self.raw_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= zone {
                return T::from_u64(lo + (m >> 64) as u64);
            }
        }
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p));
        f64::sample(self) < p
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Uniformly chosen element, `None` on an empty slice.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_range(0..slice.len())])
        }
    }

    /// Fills the slice with standard samples.
    fn fill<T: Standard>(&mut self, dest: &mut [T])
    where
        Self: Sized,
    {
        for slot in dest {
            *slot = T::sample(self);
        }
    }
}

impl<R: RngSource> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors cross-checked against an independent
    // implementation of the published C sources (prng.di.unimi.it). The
    // first SplitMix64(0) output is the widely published known-answer
    // value.
    #[test]
    fn splitmix64_known_answers() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(sm.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(sm.next_u64(), 0x06c4_5d18_8009_454f);
        assert_eq!(sm.next_u64(), 0xf88b_b8a8_724c_81ec);
        let mut sm = SplitMix64::new(0x123_4567);
        assert_eq!(sm.next_u64(), 0x3a34_ce63_80fc_0bc5);
        assert_eq!(sm.next_u64(), 0xc05a_6778_50dc_981a);
    }

    #[test]
    fn xoshiro_known_answers() {
        let mut x = Xoshiro256StarStar::seed_from_u64(1);
        assert_eq!(x.next_u64(), 0xb3f2_af6d_0fc7_10c5);
        assert_eq!(x.next_u64(), 0x853b_5596_4736_4cea);
        assert_eq!(x.next_u64(), 0x92f8_9756_082a_4514);
        let mut x = Xoshiro256StarStar::seed_from_u64(42);
        assert_eq!(x.next_u64(), 0x1578_0b2e_0c2e_c716);
        assert_eq!(x.next_u64(), 0x6104_d986_6d11_3a7e);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler missed a bucket");
        for _ in 0..100 {
            let v: u32 = rng.gen_range(5..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _: u64 = rng.gen_range(3..3);
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b = a.clone();
        SmallRng::seed_from_u64(3).shuffle(&mut a);
        SmallRng::seed_from_u64(3).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn fill_and_choose() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut buf = [0u64; 8];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&v| v != 0));
        assert!(rng.choose::<u64>(&[]).is_none());
        let pick = *rng.choose(&[1, 2, 3]).unwrap();
        assert!((1..=3).contains(&pick));
    }

    #[test]
    fn mix_decorrelates_streams() {
        let a = SplitMix64::mix(5, 0);
        let b = SplitMix64::mix(5, 1);
        assert_ne!(a, b);
        assert_eq!(a, SplitMix64::mix(5, 0));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(13);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }
}
