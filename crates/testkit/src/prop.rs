//! Minimal property-testing harness.
//!
//! A property is a function `Fn(&T) -> Result<(), String>` over inputs
//! drawn from a seeded generator. [`forall`] runs it for
//! [`Config::cases`] cases; on the first failure it *shrinks* the input —
//! halving integers toward zero and bisecting vectors — and panics with
//! both the minimal counterexample and the exact environment variables
//! that reproduce the failing case:
//!
//! ```text
//! property 'engine_matches_oracle' falsified (case 17 of 24)
//!   original: (38, 3, 812, true) — count mismatch: engine 12 oracle 13
//!   minimal:  (9, 1, 812, true) — count mismatch: engine 2 oracle 3
//!   reproduce: TESTKIT_SEED=0xdeadbeef TESTKIT_CASES=1 cargo test ...
//! ```
//!
//! Environment knobs:
//!
//! * `TESTKIT_CASES` — cases per property (default 24).
//! * `TESTKIT_SEED` — base seed (default 0x53544d41, "STMA"). Each case
//!   `i` derives its own generator seed via `SplitMix64::mix(seed, i)`,
//!   except case 0 which uses the base seed directly — so re-running with
//!   `TESTKIT_SEED=<printed case seed> TESTKIT_CASES=1` replays exactly
//!   the failing case.

use crate::rng::{SmallRng, SplitMix64};
use std::fmt::Debug;

/// Default number of cases per property.
pub const DEFAULT_CASES: usize = 24;

/// Default base seed ("STMA" in ASCII).
pub const DEFAULT_SEED: u64 = 0x5354_4d41;

/// Cap on property evaluations spent shrinking one counterexample.
const SHRINK_BUDGET: usize = 512;

/// Harness configuration, read from the environment.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: usize,
    /// Base seed; case `i` runs with `SplitMix64::mix(seed, i)` (case 0
    /// with `seed` itself).
    pub seed: u64,
}

impl Config {
    /// Reads `TESTKIT_CASES` and `TESTKIT_SEED` (decimal or `0x`-hex),
    /// falling back to the defaults.
    pub fn from_env() -> Config {
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        let seed = std::env::var("TESTKIT_SEED")
            .ok()
            .and_then(|v| parse_u64(&v))
            .unwrap_or(DEFAULT_SEED);
        Config { cases, seed }
    }

    /// The generator seed of case `i` under this config.
    pub fn case_seed(&self, i: usize) -> u64 {
        if i == 0 {
            self.seed
        } else {
            SplitMix64::mix(self.seed, i as u64)
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Inputs the harness knows how to minimize. Candidates must be
/// "smaller" by some well-founded measure so greedy shrinking
/// terminates; the integer impls halve toward zero, vectors bisect.
pub trait Shrink: Sized {
    /// Candidate smaller inputs, most aggressive first. Empty when the
    /// value is atomic or already minimal.
    fn shrink(&self) -> Vec<Self>;
}

macro_rules! impl_shrink_uint {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let x = *self;
                if x == 0 {
                    return Vec::new();
                }
                let mut out = vec![x / 2];
                if x > 1 {
                    out.push(x - 1);
                }
                out
            }
        }
    )*};
}
impl_shrink_uint!(u8, u16, u32, u64, usize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Shrink for f64 {
    fn shrink(&self) -> Vec<Self> {
        Vec::new() // not worth minimizing; seeds reproduce exactly anyway
    }
}

impl<T: Shrink + Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        let n = self.len();
        if n == 0 {
            return out;
        }
        // Bisect: drop the back half, then the front half; then drop one
        // element from either end so odd lengths can still make progress.
        out.push(self[..n / 2].to_vec());
        out.push(self[n - n / 2..].to_vec());
        if n > 1 {
            out.push(self[..n - 1].to_vec());
            out.push(self[1..].to_vec());
        }
        // Then try shrinking each element in place (first candidate only,
        // to keep the fan-out linear).
        for i in 0..n {
            if let Some(smaller) = self[i].shrink().into_iter().next() {
                let mut v = self.clone();
                v[i] = smaller;
                out.push(v);
            }
        }
        out
    }
}

macro_rules! impl_shrink_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Shrink + Clone),+> Shrink for ($($name,)+) {
            fn shrink(&self) -> Vec<Self> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink() {
                        let mut t = self.clone();
                        t.$idx = cand;
                        out.push(t);
                    }
                )+
                out
            }
        }
    };
}
impl_shrink_tuple!(A: 0);
impl_shrink_tuple!(A: 0, B: 1);
impl_shrink_tuple!(A: 0, B: 1, C: 2);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_shrink_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Runs `prop` on [`Config::cases`] inputs drawn from `gen`; shrinks and
/// panics with the reproducing seed on the first failure.
pub fn forall<T, G, P>(name: &str, gen: G, prop: P)
where
    T: Debug + Clone + Shrink,
    G: Fn(&mut SmallRng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    forall_with(Config::from_env(), name, gen, prop);
}

/// [`forall`] with an explicit config (used by the harness's own tests).
pub fn forall_with<T, G, P>(cfg: Config, name: &str, gen: G, prop: P)
where
    T: Debug + Clone + Shrink,
    G: Fn(&mut SmallRng) -> T,
    P: Fn(&T) -> Result<(), String>,
{
    for case in 0..cfg.cases {
        let case_seed = cfg.case_seed(case);
        let mut rng = SmallRng::seed_from_u64(case_seed);
        let input = gen(&mut rng);
        if let Err(err) = prop(&input) {
            let (minimal, min_err) = minimize(input.clone(), err.clone(), &prop);
            panic!(
                "property '{name}' falsified (case {case} of {cases})\n  \
                 original: {input:?} — {err}\n  \
                 minimal:  {minimal:?} — {min_err}\n  \
                 reproduce: TESTKIT_SEED={case_seed:#x} TESTKIT_CASES=1",
                cases = cfg.cases,
            );
        }
    }
}

/// Greedy shrink: repeatedly replace the counterexample with its first
/// still-failing shrink candidate, within [`SHRINK_BUDGET`] evaluations.
fn minimize<T, P>(mut cur: T, mut cur_err: String, prop: &P) -> (T, String)
where
    T: Debug + Clone + Shrink,
    P: Fn(&T) -> Result<(), String>,
{
    let mut budget = SHRINK_BUDGET;
    'outer: loop {
        for cand in cur.shrink() {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if let Err(e) = prop(&cand) {
                cur = cand;
                cur_err = e;
                continue 'outer;
            }
        }
        break; // no candidate fails: minimal
    }
    (cur, cur_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn fixed() -> Config {
        Config {
            cases: 50,
            seed: 99,
        }
    }

    #[test]
    fn passing_property_is_silent() {
        forall_with(
            fixed(),
            "sum_commutes",
            |rng| (rng.gen_range(0u64..1000), rng.gen_range(0u64..1000)),
            |&(a, b)| {
                if a + b == b + a {
                    Ok(())
                } else {
                    Err("math broke".into())
                }
            },
        );
    }

    #[test]
    fn failing_property_shrinks_to_boundary() {
        let result = std::panic::catch_unwind(|| {
            forall_with(
                fixed(),
                "all_below_ten",
                |rng| rng.gen_range(0u64..1000),
                |&n| {
                    if n < 10 {
                        Ok(())
                    } else {
                        Err(format!("{n} >= 10"))
                    }
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // Halving toward zero must land exactly on the boundary value.
        assert!(msg.contains("minimal:  10"), "unexpected message:\n{msg}");
        assert!(
            msg.contains("TESTKIT_SEED=0x"),
            "missing repro seed:\n{msg}"
        );
    }

    #[test]
    fn vec_shrink_bisects() {
        let v: Vec<u64> = (0..8).collect();
        let cands = v.shrink();
        assert!(cands.contains(&vec![0, 1, 2, 3]));
        assert!(cands.contains(&vec![4, 5, 6, 7]));
        assert!(Vec::<u64>::new().shrink().is_empty());
    }

    #[test]
    fn failing_vec_property_shrinks_small() {
        let result = std::panic::catch_unwind(|| {
            forall_with(
                fixed(),
                "no_vec_longer_than_3",
                |rng| {
                    let len = rng.gen_range(0usize..64);
                    (0..len)
                        .map(|_| rng.gen_range(0u64..5))
                        .collect::<Vec<u64>>()
                },
                |v| {
                    if v.len() <= 3 {
                        Ok(())
                    } else {
                        Err(format!("len {}", v.len()))
                    }
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // Bisection halves any failing vector down to exactly 4 elements.
        assert!(
            msg.contains("len 4"),
            "shrink did not reach minimum:\n{msg}"
        );
    }

    #[test]
    fn case_zero_replays_base_seed() {
        let cfg = Config {
            cases: 1,
            seed: 0xabcdef,
        };
        assert_eq!(cfg.case_seed(0), 0xabcdef);
        assert_ne!(cfg.case_seed(1), cfg.case_seed(0));
    }

    #[test]
    fn env_parsing_accepts_hex() {
        assert_eq!(parse_u64("0xff"), Some(255));
        assert_eq!(parse_u64("17"), Some(17));
        assert_eq!(parse_u64("zz"), None);
    }
}
