//! Pattern-level isomorphism utilities.
//!
//! Patterns are at most [`crate::MAX_PATTERN_SIZE`] vertices, so exact
//! brute-force isomorphism (≤ 8! = 40320 permutations) is instant. These
//! helpers back the catalog's distinctness checks and give users a way to
//! canonicalize and deduplicate query sets — e.g. when enumerating all
//! motifs of a size class.

use crate::Pattern;

/// Tests whether two patterns are isomorphic (labels must correspond too).
pub fn isomorphic(a: &Pattern, b: &Pattern) -> bool {
    if a.size() != b.size() || a.num_edges() != b.num_edges() {
        return false;
    }
    // Cheap invariant: sorted (degree, label) multisets must match.
    let mut da: Vec<(usize, u32)> = (0..a.size()).map(|u| (a.degree(u), a.label(u))).collect();
    let mut db: Vec<(usize, u32)> = (0..b.size()).map(|u| (b.degree(u), b.label(u))).collect();
    da.sort_unstable();
    db.sort_unstable();
    if da != db {
        return false;
    }
    let n = a.size();
    let mut perm: Vec<usize> = (0..n).collect();
    loop {
        if is_mapping(a, b, &perm) {
            return true;
        }
        if !next_permutation(&mut perm) {
            return false;
        }
    }
}

fn is_mapping(a: &Pattern, b: &Pattern, perm: &[usize]) -> bool {
    for u in 0..a.size() {
        if a.label(u) != b.label(perm[u]) {
            return false;
        }
        for v in (u + 1)..a.size() {
            if a.has_edge(u, v) != b.has_edge(perm[u], perm[v]) {
                return false;
            }
        }
    }
    true
}

pub(crate) fn next_permutation(p: &mut [usize]) -> bool {
    let n = p.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = n - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

/// A canonical form for a pattern: the lexicographically smallest
/// `(label vector, adjacency bitmask vector)` over all vertex
/// permutations. Two patterns are isomorphic iff their canonical forms are
/// equal, so this key can deduplicate motif sets in hash maps.
pub fn canonical_form(p: &Pattern) -> (Vec<u32>, Vec<u8>) {
    let n = p.size();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut best: Option<(Vec<u32>, Vec<u8>)> = None;
    loop {
        let mut labels = vec![0u32; n];
        let mut adj = vec![0u8; n];
        // inverse[original] = position under perm
        let mut inverse = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inverse[old] = new;
        }
        for old in 0..n {
            let new = inverse[old];
            labels[new] = p.label(old);
            let mut mask = 0u8;
            for (other, &inv) in inverse.iter().enumerate() {
                if p.has_edge(old, other) {
                    mask |= 1 << inv;
                }
            }
            adj[new] = mask;
        }
        let key = (labels, adj);
        if best.as_ref().is_none_or(|b| key < *b) {
            best = Some(key);
        }
        if !next_permutation(&mut perm) {
            break;
        }
    }
    best.expect("non-empty pattern")
}

/// Enumerates all connected unlabeled patterns of `n` vertices, up to
/// isomorphism, by filtering edge subsets through [`canonical_form`].
/// Practical for `n <= 5` (the size-5 motif catalog has 21 entries); the
/// tests use it to validate the paper-query catalog's claims.
pub fn all_connected_motifs(n: usize) -> Vec<Pattern> {
    assert!(
        (1..=5).contains(&n),
        "motif enumeration supported for n <= 5"
    );
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for mask in 0u32..(1 << pairs.len()) {
        let edges: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        if edges.len() + 1 < n {
            continue; // cannot be connected
        }
        // Pattern::new panics on disconnected graphs; pre-check.
        if !connected(n, &edges) {
            continue;
        }
        let p = Pattern::new(n, &edges);
        if seen.insert(canonical_form(&p)) {
            out.push(p);
        }
    }
    out
}

fn connected(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut adj = vec![0u8; n];
    for &(u, v) in edges {
        adj[u] |= 1 << v;
        adj[v] |= 1 << u;
    }
    let mut seen: u8 = 1;
    loop {
        let mut next = seen;
        let mut m = seen;
        while m != 0 {
            let u = m.trailing_zeros() as usize;
            m &= m - 1;
            next |= adj[u];
        }
        if next == seen {
            break;
        }
        seen = next;
    }
    seen.count_ones() as usize == n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn paths_are_isomorphic_under_relabeling() {
        let a = Pattern::new(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = Pattern::new(4, &[(2, 0), (0, 3), (3, 1)]); // P4 scrambled
        assert!(isomorphic(&a, &b));
    }

    #[test]
    fn star_and_path_are_not_isomorphic() {
        assert!(!isomorphic(&catalog::star3(), &catalog::path(4)));
    }

    #[test]
    fn labels_break_isomorphism() {
        let a = catalog::triangle().with_labels(&[0, 0, 1]);
        let b = catalog::triangle().with_labels(&[0, 1, 1]);
        assert!(!isomorphic(&a, &b));
        let c = catalog::triangle().with_labels(&[1, 0, 0]);
        assert!(isomorphic(&a, &c));
    }

    #[test]
    fn canonical_forms_agree_iff_isomorphic() {
        let pats = [
            catalog::square(),
            catalog::diamond(),
            catalog::star3(),
            catalog::path(4),
            catalog::tailed_triangle(),
            catalog::k4(),
        ];
        for (i, a) in pats.iter().enumerate() {
            for (j, b) in pats.iter().enumerate() {
                assert_eq!(
                    canonical_form(a) == canonical_form(b),
                    i == j,
                    "{} vs {}",
                    a.name(),
                    b.name()
                );
            }
        }
    }

    #[test]
    fn motif_counts_match_oeis() {
        // Connected graphs on n nodes up to isomorphism (OEIS A001349):
        // 1, 1, 2, 6, 21.
        assert_eq!(all_connected_motifs(1).len(), 1);
        assert_eq!(all_connected_motifs(2).len(), 1);
        assert_eq!(all_connected_motifs(3).len(), 2);
        assert_eq!(all_connected_motifs(4).len(), 6);
        assert_eq!(all_connected_motifs(5).len(), 21);
    }

    #[test]
    fn size5_paper_queries_are_among_the_21_motifs() {
        let motifs = all_connected_motifs(5);
        for i in 1..=8 {
            let q = catalog::paper_query(i);
            assert!(
                motifs.iter().any(|m| isomorphic(m, &q)),
                "q{i} missing from the size-5 motif catalog"
            );
        }
    }
}
