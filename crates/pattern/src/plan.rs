//! Compilation of a (pattern, matching order) pair into a [`MatchPlan`] —
//! the per-level candidate-set program that every engine in the workspace
//! executes.
//!
//! For each level `l >= 1` the candidate set is defined by a *chain* of set
//! operations over the neighbor lists of already-matched vertices:
//! intersections for pattern neighbors and (in vertex-induced mode)
//! differences for pattern non-neighbors. Without code motion the whole
//! chain is evaluated at level `l` (the nested loop of Fig. 1 of the paper).
//! With code motion (§VII), shared chain prefixes are lifted into
//! *intermediate sets* computed at the earliest level where their operands
//! are available — the dependence graph of Fig. 9a — and stored in a compact
//! per-level encoding (Fig. 9b). For labeled queries, intermediate sets
//! shared by candidate sets of different labels carry a *merged* multi-label
//! filter (Fig. 10b), which keeps the number of sets (and hence the warp
//! stack's shared-memory footprint) small.

use crate::order::MatchOrder;
use crate::symmetry::{self, Bound};
use crate::Pattern;
use std::collections::HashMap;
use stmatch_graph::Label;

/// Set-operation kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Keep elements also present in the operand neighbor list.
    Intersect,
    /// Keep elements absent from the operand neighbor list.
    Difference,
}

/// A label filter over set elements.
///
/// Bit `i` allows label `i`; labels ≥ 64 are conservatively always allowed
/// (the exact per-candidate label check happens at the candidate set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabelMask(u64);

impl LabelMask {
    /// The mask allowing every label (unlabeled queries).
    pub const ALL: LabelMask = LabelMask(u64::MAX);

    /// The empty mask.
    pub const NONE: LabelMask = LabelMask(0);

    /// Mask allowing exactly `label`.
    pub fn single(label: Label) -> LabelMask {
        if label >= 64 {
            LabelMask::ALL
        } else {
            LabelMask(1u64 << label)
        }
    }

    /// Union of two masks.
    #[inline]
    pub fn union(self, other: LabelMask) -> LabelMask {
        LabelMask(self.0 | other.0)
    }

    /// True if the mask admits `label`.
    #[inline]
    pub fn allows(self, label: Label) -> bool {
        self.0 == u64::MAX || label >= 64 || self.0 & (1u64 << label) != 0
    }

    /// True if this is the all-pass mask.
    #[inline]
    pub fn is_all(self) -> bool {
        self.0 == u64::MAX
    }

    /// Number of distinct (small) labels admitted; `None` for the all-mask.
    pub fn label_count(self) -> Option<u32> {
        if self.is_all() {
            None
        } else {
            Some(self.0.count_ones())
        }
    }
}

/// The base operand a set is computed from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Base {
    /// The data-graph neighbor list of the vertex matched at this order
    /// position.
    Neighbors(u8),
    /// A previously computed set (by id).
    Set(u16),
}

/// One chained set operation: combine with the neighbor list of the vertex
/// matched at order position `pos`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ChainOp {
    pub pos: u8,
    pub kind: OpKind,
}

/// Definition of one set in the plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetDef {
    /// The recursion level at which this set is computed. All operands are
    /// available once positions `0..level` are matched.
    pub level: u8,
    /// Base operand.
    pub base: Base,
    /// Chained operations applied to the base, in order. Code-motion plans
    /// have at most one op per set; naive plans carry whole chains.
    pub ops: Vec<ChainOp>,
    /// Label filter applied to elements written into this set.
    pub mask: LabelMask,
    /// For candidate sets of labeled queries: the exact required label.
    pub target_label: Option<Label>,
}

/// Plan construction options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanOptions {
    /// Vertex-induced (true) vs edge-induced (false) matching.
    pub induced: bool,
    /// Apply loop-invariant code motion (§VII).
    pub code_motion: bool,
    /// Apply symmetry-breaking bounds so each subgraph is counted once.
    pub symmetry_breaking: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            induced: false,
            code_motion: true,
            symmetry_breaking: true,
        }
    }
}

/// A compiled matching plan, shared by every engine.
#[derive(Clone, Debug)]
pub struct MatchPlan {
    pattern: Pattern,
    order: MatchOrder,
    options: PlanOptions,
    /// All sets, grouped by `level` ascending; within a level, dependencies
    /// precede dependents.
    sets: Vec<SetDef>,
    /// `level_ptr[l]..level_ptr[l+1]` indexes `sets` computed when entering
    /// level `l` (the `row_ptr` array of Fig. 9b). Indexed `0..=size`.
    level_ptr: Vec<usize>,
    /// `cand[l]` = id of the candidate set iterated at level `l` (None at
    /// level 0, where candidates are the vertex universe).
    cand: Vec<Option<u16>>,
    /// Per-level symmetry bounds (empty when symmetry breaking is off).
    bounds: Vec<Vec<(usize, Bound)>>,
    /// Required data-vertex label per level (None when unlabeled).
    level_labels: Vec<Option<Label>>,
}

impl MatchPlan {
    /// Compiles `pattern` with the greedy matching order.
    pub fn compile(pattern: &Pattern, options: PlanOptions) -> MatchPlan {
        let order = MatchOrder::greedy(pattern);
        Self::compile_with_order(pattern, order, options)
    }

    /// Compiles an edge-anchored plan for incremental (delta) matching:
    /// the matching order is [`MatchOrder::anchored`] on `edge`, and
    /// symmetry breaking is forced **off** — anchored runs count
    /// *embeddings* through a pinned data edge, and the delta engine
    /// divides by `symmetry::automorphism_count` afterwards (the
    /// symmetry bounds assume the free greedy order and would miscount
    /// under pinned levels).
    pub fn compile_anchored(
        pattern: &Pattern,
        edge: (usize, usize),
        mut options: PlanOptions,
    ) -> MatchPlan {
        options.symmetry_breaking = false;
        let order = MatchOrder::anchored(pattern, edge);
        Self::compile_with_order(pattern, order, options)
    }

    /// Compiles `pattern` with an explicit matching order.
    pub fn compile_with_order(
        pattern: &Pattern,
        order: MatchOrder,
        options: PlanOptions,
    ) -> MatchPlan {
        let k = pattern.size();
        debug_assert_eq!(order.len(), k);

        // Per-level constraint chains. chain[l] (for l >= 1) starts with an
        // Intersect (connectivity guarantees one exists) followed by the
        // remaining ops ascending by position.
        let mut chains: Vec<Vec<ChainOp>> = Vec::with_capacity(k);
        chains.push(Vec::new()); // level 0 iterates the universe
        for l in 1..k {
            let u = order.vertex_at(l);
            let mut ops: Vec<ChainOp> = Vec::new();
            for j in 0..l {
                let v = order.vertex_at(j);
                if pattern.has_edge(u, v) {
                    ops.push(ChainOp {
                        pos: j as u8,
                        kind: OpKind::Intersect,
                    });
                } else if options.induced {
                    ops.push(ChainOp {
                        pos: j as u8,
                        kind: OpKind::Difference,
                    });
                }
            }
            // Rotate the first Intersect to the front so the base operand is
            // always a materialisable neighbor list.
            let first_int = ops
                .iter()
                .position(|op| op.kind == OpKind::Intersect)
                .expect("matching order guarantees a backward neighbor");
            ops.swap(0, first_int);
            // Keep the rest sorted ascending by position so shared prefixes
            // line up across levels (maximizing code-motion reuse).
            ops[1..].sort_unstable_by_key(|op| op.pos);
            chains.push(ops);
        }

        let labeled = pattern.is_labeled();
        let level_labels: Vec<Option<Label>> = (0..k)
            .map(|l| labeled.then(|| pattern.label(order.vertex_at(l))))
            .collect();

        let mut sets: Vec<SetDef> = Vec::new();
        let mut cand: Vec<Option<u16>> = vec![None; k];

        if options.code_motion {
            Self::build_code_motion_sets(&chains, &level_labels, &mut sets, &mut cand);
            Self::fold_unshared_sets(&mut sets, &mut cand);
        } else {
            // Naive: one whole-chain set per level, evaluated at that level.
            for (l, chain) in chains.iter().enumerate().skip(1) {
                let id = sets.len() as u16;
                sets.push(SetDef {
                    level: l as u8,
                    base: Base::Neighbors(chain[0].pos),
                    ops: chain[1..].to_vec(),
                    mask: level_labels[l]
                        .map(LabelMask::single)
                        .unwrap_or(LabelMask::ALL),
                    target_label: level_labels[l],
                });
                cand[l] = Some(id);
            }
        }

        // Group sets by level (stable: preserves dependency order).
        let mut perm: Vec<usize> = (0..sets.len()).collect();
        perm.sort_by_key(|&i| sets[i].level);
        let mut remap = vec![0u16; sets.len()];
        for (new_id, &old_id) in perm.iter().enumerate() {
            remap[old_id] = new_id as u16;
        }
        let mut grouped: Vec<SetDef> = perm.iter().map(|&i| sets[i].clone()).collect();
        for set in &mut grouped {
            if let Base::Set(dep) = &mut set.base {
                *dep = remap[*dep as usize];
            }
        }
        for c in cand.iter_mut().flatten() {
            *c = remap[*c as usize];
        }
        let mut level_ptr = vec![0usize; k + 1];
        for set in &grouped {
            level_ptr[set.level as usize + 1] += 1;
        }
        for l in 0..k {
            level_ptr[l + 1] += level_ptr[l];
        }

        let bounds = if options.symmetry_breaking {
            symmetry::bounds_for_order(pattern, &order)
        } else {
            vec![Vec::new(); k]
        };

        MatchPlan {
            pattern: pattern.clone(),
            order,
            options,
            sets: grouped,
            level_ptr,
            cand,
            bounds,
            level_labels,
        }
    }

    /// Builds the code-motion set DAG: a trie over chain prefixes.
    ///
    /// Unlabeled queries use trie nodes directly as candidate sets (full
    /// chains are just trie leaves, shared when identical). Labeled queries
    /// keep candidate sets separate with exact label filters, while shared
    /// intermediate prefixes carry merged multi-label masks (Fig. 10b).
    fn build_code_motion_sets(
        chains: &[Vec<ChainOp>],
        level_labels: &[Option<Label>],
        sets: &mut Vec<SetDef>,
        cand: &mut [Option<u16>],
    ) {
        let labeled = level_labels.iter().any(|l| l.is_some());
        // Trie over prefixes: key = prefix of chain ops, value = set id.
        let mut trie: HashMap<Vec<ChainOp>, u16> = HashMap::new();
        // Merged label masks for intermediate nodes, computed up front:
        // the union of target labels of every candidate whose chain passes
        // strictly through the prefix.
        let mut masks: HashMap<Vec<ChainOp>, LabelMask> = HashMap::new();
        if labeled {
            for (l, chain) in chains.iter().enumerate().skip(1) {
                let target = LabelMask::single(level_labels[l].unwrap_or(0));
                for plen in 1..chain.len() {
                    let key = chain[..plen].to_vec();
                    let entry = masks.entry(key).or_insert(LabelMask::NONE);
                    *entry = entry.union(target);
                }
            }
        }

        let intern_prefix = |prefix: &[ChainOp],
                             sets: &mut Vec<SetDef>,
                             trie: &mut HashMap<Vec<ChainOp>, u16>|
         -> u16 {
            if let Some(&id) = trie.get(prefix) {
                return id;
            }
            // Intern parents first (recursively, iteratively here).
            let mut parent: Option<u16> = None;
            for plen in 1..=prefix.len() {
                let key = &prefix[..plen];
                if let Some(&id) = trie.get(key) {
                    parent = Some(id);
                    continue;
                }
                let level = key.iter().map(|op| op.pos + 1).max().unwrap();
                let mask = if labeled {
                    masks.get(key).copied().unwrap_or(LabelMask::NONE)
                } else {
                    LabelMask::ALL
                };
                let def = if plen == 1 {
                    SetDef {
                        level,
                        base: Base::Neighbors(key[0].pos),
                        ops: Vec::new(),
                        mask,
                        target_label: None,
                    }
                } else {
                    SetDef {
                        level,
                        base: Base::Set(parent.expect("parent interned")),
                        ops: vec![*key.last().unwrap()],
                        mask,
                        target_label: None,
                    }
                };
                let id = sets.len() as u16;
                sets.push(def);
                trie.insert(key.to_vec(), id);
                parent = Some(id);
            }
            parent.unwrap()
        };

        // Dedup of labeled candidate sets by (chain, label).
        let mut cand_cache: HashMap<(Vec<ChainOp>, Label), u16> = HashMap::new();

        for (l, chain) in chains.iter().enumerate().skip(1) {
            if !labeled {
                // Candidate = trie node of the full chain.
                let id = intern_prefix(chain, sets, &mut trie);
                cand[l] = Some(id);
                continue;
            }
            let label = level_labels[l].unwrap_or(0);
            if let Some(&id) = cand_cache.get(&(chain.clone(), label)) {
                cand[l] = Some(id);
                continue;
            }
            let level = chain.iter().map(|op| op.pos + 1).max().unwrap();
            let def = if chain.len() == 1 {
                SetDef {
                    level,
                    base: Base::Neighbors(chain[0].pos),
                    ops: Vec::new(),
                    mask: LabelMask::single(label),
                    target_label: Some(label),
                }
            } else {
                let dep = intern_prefix(&chain[..chain.len() - 1], sets, &mut trie);
                SetDef {
                    level,
                    base: Base::Set(dep),
                    ops: vec![*chain.last().unwrap()],
                    mask: LabelMask::single(label),
                    target_label: Some(label),
                }
            };
            let id = sets.len() as u16;
            sets.push(def);
            cand_cache.insert((chain.clone(), label), id);
            cand[l] = Some(id);
        }
    }

    /// Shrinks the set DAG: an intermediate set used by exactly one
    /// dependent *at the same level* provides neither sharing nor
    /// loop-invariant reuse, so it is folded into its dependent (the ops
    /// chains concatenate). This keeps `NUM_SETS` — and hence the warp
    /// stack's memory budget — small for vertex-induced queries whose
    /// difference chains share few prefixes.
    fn fold_unshared_sets(sets: &mut Vec<SetDef>, cand: &mut [Option<u16>]) {
        loop {
            let n = sets.len();
            // usage[i] = (dependent count, last dependent id, candidate uses)
            let mut dep_count = vec![0usize; n];
            let mut last_dep = vec![usize::MAX; n];
            for (id, s) in sets.iter().enumerate() {
                if let Base::Set(d) = s.base {
                    dep_count[d as usize] += 1;
                    last_dep[d as usize] = id;
                }
            }
            let mut cand_used = vec![false; n];
            for c in cand.iter().flatten() {
                cand_used[*c as usize] = true;
            }
            let victim = (0..n).find(|&i| {
                dep_count[i] == 1
                    && !cand_used[i]
                    && sets[i].target_label.is_none()
                    && sets[last_dep[i]].level == sets[i].level
            });
            let Some(v) = victim else { break };
            let t = last_dep[v];
            let mut merged_ops = sets[v].ops.clone();
            merged_ops.extend_from_slice(&sets[t].ops);
            sets[t].ops = merged_ops;
            sets[t].base = sets[v].base;
            // Remove v; remap ids above it.
            sets.remove(v);
            for s in sets.iter_mut() {
                if let Base::Set(d) = &mut s.base {
                    if *d as usize > v {
                        *d -= 1;
                    }
                }
            }
            for c in cand.iter_mut().flatten() {
                if *c as usize > v {
                    *c -= 1;
                }
            }
        }
    }

    /// The compiled pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The matching order.
    pub fn order(&self) -> &MatchOrder {
        &self.order
    }

    /// The options the plan was compiled with.
    pub fn options(&self) -> PlanOptions {
        self.options
    }

    /// Number of levels (= pattern size).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.order.len()
    }

    /// Total number of sets (`NUM_SETS` in the paper's memory budget).
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// All set definitions, grouped by level.
    #[inline]
    pub fn sets(&self) -> &[SetDef] {
        &self.sets
    }

    /// Ids of the sets to compute when entering `level`.
    pub fn sets_at_level(&self, level: usize) -> std::ops::Range<usize> {
        self.level_ptr[level]..self.level_ptr[level + 1]
    }

    /// The candidate set id iterated at `level` (None at level 0).
    #[inline]
    pub fn candidate_set(&self, level: usize) -> Option<u16> {
        self.cand[level]
    }

    /// Symmetry bounds at `level`: `(earlier position, bound direction)`.
    #[inline]
    pub fn bounds(&self, level: usize) -> &[(usize, Bound)] {
        &self.bounds[level]
    }

    /// Required data-vertex label at `level` (None when unlabeled).
    #[inline]
    pub fn level_label(&self, level: usize) -> Option<Label> {
        self.level_labels[level]
    }

    /// Labels that [`LabelMask`] cannot represent (>= 64) pass the set
    /// filters conservatively, so candidates at such levels need an exact
    /// label check at match time. Returns that label when required.
    #[inline]
    pub fn residual_label_check(&self, level: usize) -> Option<Label> {
        self.level_labels[level].filter(|&l| LabelMask::single(l).is_all())
    }

    /// True if this plan matches vertex-induced subgraphs.
    #[inline]
    pub fn induced(&self) -> bool {
        self.options.induced
    }

    /// Emits the compact dependence-graph encoding of Fig. 9b: `row_ptr`
    /// (set counts per level) and per-set triples
    /// `(operand position, is_intersection, dependency)`.
    ///
    /// Only meaningful for code-motion plans, where each set has at most one
    /// chained op. `dependency` is `u16::MAX` when the base is a raw
    /// neighbor list.
    pub fn compact(&self) -> CompactPlan {
        let set_ops = self
            .sets
            .iter()
            .map(|s| {
                let (pos, kind) = match (&s.base, s.ops.first()) {
                    (Base::Neighbors(p), None) => (*p, OpKind::Intersect),
                    (Base::Set(_), Some(op)) => (op.pos, op.kind),
                    // Naive plans carry multi-op sets; report the first op.
                    (Base::Neighbors(p), Some(_)) => (*p, OpKind::Intersect),
                    (Base::Set(_), None) => unreachable!("set dep without op"),
                };
                CompactSetOp {
                    operand_pos: pos,
                    intersect: kind == OpKind::Intersect,
                    dep: match s.base {
                        Base::Set(d) => d,
                        Base::Neighbors(_) => u16::MAX,
                    },
                }
            })
            .collect();
        CompactPlan {
            row_ptr: self.level_ptr.clone(),
            set_ops,
        }
    }
}

/// Seeded-mutation hooks for the verifier kill-test suite (tests and the
/// `verify_check` bench legs only, mirroring `bytecode::mutation`): each
/// helper produces a *structurally well-formed but wrong* plan — it still
/// lowers and passes `PlanBytecode::verify`, so only the static analyses of
/// `stmatch-plan-verify` (or the golden counts) can catch it. Never called
/// from production paths.
pub mod mutation {
    use super::{Base, LabelMask, MatchPlan, SetDef};

    /// Appends a set nothing ever reads: computed at the deepest level from
    /// the level-0 neighbor list, never a candidate, never a dependency.
    /// Models a code-motion pass that lifts a prefix and then forgets to
    /// retire it. Returns the dead set's id.
    pub fn insert_dead_set(plan: &mut MatchPlan) -> u16 {
        let k = plan.order.len();
        let level = k.saturating_sub(1) as u8;
        let id = plan.sets.len() as u16;
        // Appending at the tail of the deepest level keeps the grouped-by-
        // level invariant; only the terminal level_ptr entry moves.
        plan.sets.push(SetDef {
            level,
            base: Base::Neighbors(0),
            ops: Vec::new(),
            mask: LabelMask::ALL,
            target_label: None,
        });
        plan.level_ptr[k] += 1;
        id
    }

    /// Removes the last symmetry bound of the deepest bounded level,
    /// modelling a plan whose symmetry-breaking predicate was dropped
    /// between compilation and launch. Returns `(level, position)` of the
    /// dropped bound, or `None` when the plan carries no bounds.
    pub fn drop_symmetry_bound(plan: &mut MatchPlan) -> Option<(usize, usize)> {
        for l in (0..plan.bounds.len()).rev() {
            if let Some((pos, _)) = plan.bounds[l].pop() {
                return Some((l, pos));
            }
        }
        None
    }
}

/// One entry of the compact encoding (Fig. 9b `set_ops`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactSetOp {
    /// Order position whose matched vertex's neighbor list is the operand.
    pub operand_pos: u8,
    /// Intersection (true) or difference (false).
    pub intersect: bool,
    /// Index of the dependency set, or `u16::MAX` for a raw neighbor base.
    pub dep: u16,
}

/// The compact per-level dependence encoding (Fig. 9b): tens of bytes,
/// suitable for a GPU's shared memory.
#[derive(Clone, Debug)]
pub struct CompactPlan {
    /// `row_ptr[l]..row_ptr[l+1]` indexes `set_ops` for level `l`.
    pub row_ptr: Vec<usize>,
    /// One op triple per set.
    pub set_ops: Vec<CompactSetOp>,
}

impl CompactPlan {
    /// Size of the encoding in bytes (the paper: "the two arrays take only
    /// tens of bytes").
    pub fn byte_size(&self) -> usize {
        self.row_ptr.len() * std::mem::size_of::<u32>()
            + self.set_ops.len() * std::mem::size_of::<CompactSetOp>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    /// The paper's running example (Fig. 2): u0 adjacent to u1, u2, u3;
    /// u3 adjacent to everyone; u1–u2 not adjacent.
    fn paper_example() -> Pattern {
        Pattern::new(4, &[(0, 1), (0, 2), (0, 3), (1, 3), (2, 3)]).with_name("fig2")
    }

    fn opts(induced: bool, code_motion: bool) -> PlanOptions {
        PlanOptions {
            induced,
            code_motion,
            symmetry_breaking: false,
        }
    }

    #[test]
    fn fig9_example_has_four_sets() {
        // Vertex-induced, code motion, order [0,1,2,3] (u0 is max degree
        // together with u3; greedy picks one of them). Force the paper's
        // order explicitly.
        let p = paper_example();
        let order = MatchOrder::from_order(&p, vec![0, 1, 2, 3]);
        let plan = MatchPlan::compile_with_order(&p, order, opts(true, true));
        // C1 = N(v0); C2 = C1 - N(v1); C21 = C1 ∩ N(v1); C3 = C21 ∩ N(v2).
        assert_eq!(plan.num_sets(), 4, "{:?}", plan.sets());
        // Levels: C1 at 1; C2 and C21 at 2; C3 at 3.
        assert_eq!(plan.sets_at_level(1).len(), 1);
        assert_eq!(plan.sets_at_level(2).len(), 2);
        assert_eq!(plan.sets_at_level(3).len(), 1);
        // Candidate of level 3 depends on the intermediate set.
        let c3 = plan.candidate_set(3).unwrap() as usize;
        assert!(matches!(plan.sets()[c3].base, Base::Set(_)));
    }

    #[test]
    fn naive_plan_evaluates_whole_chains() {
        let p = paper_example();
        let order = MatchOrder::from_order(&p, vec![0, 1, 2, 3]);
        let plan = MatchPlan::compile_with_order(&p, order, opts(true, false));
        assert_eq!(plan.num_sets(), 3); // one per level >= 1
        let c3 = plan.candidate_set(3).unwrap() as usize;
        // Level-3 chain: ∩N(v0) ∩N(v1) ∩N(v2) — two chained ops on the base.
        assert_eq!(plan.sets()[c3].ops.len(), 2);
        assert_eq!(plan.sets()[c3].level, 3);
    }

    #[test]
    fn edge_induced_drops_difference_ops() {
        let p = paper_example();
        let order = MatchOrder::from_order(&p, vec![0, 1, 2, 3]);
        let plan = MatchPlan::compile_with_order(&p, order, opts(false, true));
        for s in plan.sets() {
            for op in &s.ops {
                assert_eq!(op.kind, OpKind::Intersect);
            }
        }
    }

    #[test]
    fn lifted_candidate_reuse_across_levels() {
        // Star S3 (center 0, leaves 1..3), edge-induced: every leaf level
        // has the identical chain [(0, ∩)], so with code motion all three
        // candidate sets collapse into one set computed at level 1.
        let p = catalog::star3();
        let order = MatchOrder::from_order(&p, vec![0, 1, 2, 3]);
        let plan = MatchPlan::compile_with_order(&p, order, opts(false, true));
        assert_eq!(plan.num_sets(), 1);
        let c = plan.candidate_set(1);
        assert_eq!(plan.candidate_set(2), c);
        assert_eq!(plan.candidate_set(3), c);
        assert_eq!(plan.sets()[c.unwrap() as usize].level, 1);
    }

    #[test]
    fn paper_claim_num_sets_at_most_15_for_size7() {
        // §VIII: "For queries of no more than seven nodes, NUM_SETS <= 15".
        for q in catalog::all_paper_queries() {
            for induced in [false, true] {
                let labeled = q.clone().with_random_labels(10, 7);
                for p in [q.clone(), labeled] {
                    let plan = MatchPlan::compile(&p, opts(induced, true));
                    assert!(
                        plan.num_sets() <= 15,
                        "{} induced={induced} labeled={} has {} sets",
                        q.name(),
                        p.is_labeled(),
                        plan.num_sets()
                    );
                }
            }
        }
    }

    #[test]
    fn labeled_intermediates_merge_masks() {
        // Pattern where two candidate sets with different labels share a
        // prefix: K4 labeled with distinct labels on the last two vertices.
        let p = catalog::clique(4).with_labels(&[0, 0, 1, 2]);
        let plan = MatchPlan::compile(&p, opts(false, true));
        // Some intermediate must admit both label 1 and label 2... find the
        // shared prefix set (an intermediate with no target label).
        let merged = plan
            .sets()
            .iter()
            .filter(|s| s.target_label.is_none() && !s.mask.is_all())
            .any(|s| s.mask.label_count().unwrap_or(0) >= 2);
        assert!(
            merged,
            "expected a merged multi-label intermediate: {:?}",
            plan.sets()
        );
    }

    #[test]
    fn label_mask_semantics() {
        let m = LabelMask::single(3).union(LabelMask::single(7));
        assert!(m.allows(3));
        assert!(m.allows(7));
        assert!(!m.allows(4));
        assert!(m.allows(100)); // conservative for large labels
        assert!(LabelMask::ALL.allows(0));
        assert_eq!(m.label_count(), Some(2));
        assert_eq!(LabelMask::single(64), LabelMask::ALL);
    }

    #[test]
    fn dependencies_precede_dependents() {
        for q in catalog::all_paper_queries() {
            for induced in [false, true] {
                let plan = MatchPlan::compile(&q, opts(induced, true));
                for (id, s) in plan.sets().iter().enumerate() {
                    if let Base::Set(dep) = s.base {
                        assert!((dep as usize) < id, "{}: set {id} dep {dep}", q.name());
                        assert!(
                            plan.sets()[dep as usize].level <= s.level,
                            "{}: dep level ordering",
                            q.name()
                        );
                    }
                    for op in &s.ops {
                        assert!((op.pos as usize) < s.level as usize + 1);
                    }
                }
            }
        }
    }

    #[test]
    fn compact_encoding_is_small() {
        // The paper: the compact arrays take "only tens of bytes".
        let plan = MatchPlan::compile(&catalog::paper_query(24), opts(false, true));
        let compact = plan.compact();
        assert!(compact.byte_size() < 200, "{} bytes", compact.byte_size());
        assert_eq!(compact.set_ops.len(), plan.num_sets());
        assert_eq!(*compact.row_ptr.last().unwrap(), plan.num_sets());
    }

    #[test]
    fn mutations_stay_structurally_well_formed() {
        use crate::PlanBytecode;
        // Dead set: one extra set at the deepest level, stream still lowers
        // and verifies (the corruption is semantic, not structural).
        let mut plan = MatchPlan::compile(&catalog::paper_query(6), PlanOptions::default());
        let before = plan.num_sets();
        let id = mutation::insert_dead_set(&mut plan);
        assert_eq!(plan.num_sets(), before + 1);
        assert_eq!(id as usize, before);
        assert_eq!(
            plan.sets()[id as usize].level as usize,
            plan.num_levels() - 1
        );
        PlanBytecode::lower(&plan).expect("dead-set plan lowers cleanly");

        // Dropped bound: exactly one bound disappears, everything else holds.
        let mut plan = MatchPlan::compile(&catalog::clique(4), PlanOptions::default());
        let total = |p: &MatchPlan| {
            (0..p.num_levels())
                .map(|l| p.bounds(l).len())
                .sum::<usize>()
        };
        let n = total(&plan);
        assert!(n > 0);
        let (level, pos) = mutation::drop_symmetry_bound(&mut plan).unwrap();
        assert!(pos < level);
        assert_eq!(total(&plan), n - 1);
        PlanBytecode::lower(&plan).expect("dropped-bound plan lowers cleanly");

        // No bounds to drop when symmetry breaking is off.
        let mut plain = MatchPlan::compile(&catalog::clique(4), opts(false, true));
        assert!(mutation::drop_symmetry_bound(&mut plain).is_none());
    }

    #[test]
    fn candidate_sets_exist_for_every_level_past_zero() {
        for q in catalog::all_paper_queries() {
            for code_motion in [false, true] {
                for induced in [false, true] {
                    let plan = MatchPlan::compile(&q, opts(induced, code_motion));
                    assert!(plan.candidate_set(0).is_none());
                    for l in 1..plan.num_levels() {
                        let c = plan.candidate_set(l).expect("candidate set");
                        assert!(
                            plan.sets()[c as usize].level as usize <= l,
                            "{}: candidate of level {l} computed later",
                            q.name()
                        );
                    }
                }
            }
        }
    }
}
