//! The query catalog: the paper's 24 evaluation queries plus classic motifs.
//!
//! The paper tests 24 distinct undirected queries: `q1..q8` of size 5,
//! `q9..q16` of size 6 and `q17..q24` of size 7, where `q8`, `q16` and `q24`
//! are cliques and `q7`, `q8`, `q15`, `q16`, `q23`, `q24` cover the cuTS
//! query set. The paper selected the non-clique queries *randomly* from the
//! motif catalogs and does not publish their exact shapes, so this module
//! fixes a deterministic, documented selection with the same constraints and
//! a spread from sparse (paths) to dense (clique minus an edge) — the axis
//! that drives the performance differences in the evaluation.

use crate::Pattern;

/// Classic 3-vertex patterns.
pub fn triangle() -> Pattern {
    Pattern::new(3, &[(0, 1), (1, 2), (2, 0)]).with_name("triangle")
}

/// Path with two edges (wedge / open triangle).
pub fn wedge() -> Pattern {
    Pattern::new(3, &[(0, 1), (1, 2)]).with_name("wedge")
}

/// 4-vertex cycle.
pub fn square() -> Pattern {
    Pattern::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).with_name("square")
}

/// 4-clique.
pub fn k4() -> Pattern {
    clique(4)
}

/// Diamond: K4 minus one edge.
pub fn diamond() -> Pattern {
    Pattern::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).with_name("diamond")
}

/// Tailed triangle: triangle with a pendant edge.
pub fn tailed_triangle() -> Pattern {
    Pattern::new(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).with_name("tailed-triangle")
}

/// 3-star (claw).
pub fn star3() -> Pattern {
    Pattern::new(4, &[(0, 1), (0, 2), (0, 3)]).with_name("star3")
}

/// The clique K_n.
pub fn clique(n: usize) -> Pattern {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    Pattern::new(n, &edges).with_name(format!("K{n}"))
}

/// The clique K_n minus the edge {0, 1}.
pub fn clique_minus_edge(n: usize) -> Pattern {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2 - 1);
    for u in 0..n {
        for v in (u + 1)..n {
            if !(u == 0 && v == 1) {
                edges.push((u, v));
            }
        }
    }
    Pattern::new(n, &edges).with_name(format!("K{n}-e"))
}

/// Simple path P_n (n vertices, n-1 edges).
pub fn path(n: usize) -> Pattern {
    let edges: Vec<_> = (1..n).map(|v| (v - 1, v)).collect();
    Pattern::new(n, &edges).with_name(format!("P{n}"))
}

/// Cycle C_n.
pub fn cycle(n: usize) -> Pattern {
    let mut edges: Vec<_> = (1..n).map(|v| (v - 1, v)).collect();
    edges.push((n - 1, 0));
    Pattern::new(n, &edges).with_name(format!("C{n}"))
}

/// Cycle C_{n-1} plus a pendant vertex attached to vertex 0.
pub fn tailed_cycle(n: usize) -> Pattern {
    let c = n - 1;
    let mut edges: Vec<_> = (1..c).map(|v| (v - 1, v)).collect();
    edges.push((c - 1, 0));
    edges.push((0, c));
    Pattern::new(n, &edges).with_name(format!("tailed-C{c}"))
}

/// Wheel: hub vertex 0 connected to every vertex of the rim cycle 1..n.
pub fn wheel(n: usize) -> Pattern {
    let rim = n - 1;
    let mut edges: Vec<_> = (1..=rim).map(|v| (0, v)).collect();
    for v in 1..rim {
        edges.push((v, v + 1));
    }
    edges.push((rim, 1));
    Pattern::new(n, &edges).with_name(format!("W{rim}"))
}

/// Returns query `qi` for `i` in `1..=24`, the paper's evaluation set.
///
/// # Panics
/// Panics if `i` is outside `1..=24`.
pub fn paper_query(i: usize) -> Pattern {
    let p = match i {
        // ---- size 5: q1..q8 ----
        1 => path(5),
        2 => cycle(5),
        // House: 4-cycle 0-1-2-3 with a roof vertex 4 over edge {0,1}.
        3 => Pattern::new(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]).with_name("house"),
        4 => tailed_cycle(5),
        // Lollipop: K4 on {0,1,2,3} plus pendant 4 on vertex 3.
        5 => Pattern::new(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)])
            .with_name("lollipop5"),
        // Bowtie: triangles {0,1,2} and {2,3,4} sharing vertex 2.
        6 => Pattern::new(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]).with_name("bowtie"),
        7 => clique_minus_edge(5),
        8 => clique(5),
        // ---- size 6: q9..q16 ----
        9 => path(6),
        10 => cycle(6),
        // Prism (triangular prism): triangles {0,1,2}, {3,4,5} joined by a
        // perfect matching.
        11 => Pattern::new(
            6,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 4),
                (4, 5),
                (5, 3),
                (0, 3),
                (1, 4),
                (2, 5),
            ],
        )
        .with_name("prism"),
        12 => tailed_cycle(6),
        // Net: triangle {0,1,2} with one pendant per corner.
        13 => Pattern::new(6, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 4), (2, 5)]).with_name("net"),
        14 => wheel(6),
        15 => clique_minus_edge(6),
        16 => clique(6),
        // ---- size 7: q17..q24 ----
        17 => path(7),
        18 => cycle(7),
        19 => tailed_cycle(7),
        // Two K4s sharing vertex 3.
        20 => Pattern::new(
            7,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (3, 5),
                (3, 6),
                (4, 5),
                (4, 6),
                (5, 6),
            ],
        )
        .with_name("double-K4"),
        21 => wheel(7),
        // Complete bipartite K{3,4}: parts {0,1,2} and {3,4,5,6}.
        22 => Pattern::new(
            7,
            &[
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 3),
                (1, 4),
                (1, 5),
                (1, 6),
                (2, 3),
                (2, 4),
                (2, 5),
                (2, 6),
            ],
        )
        .with_name("K3,4"),
        23 => clique_minus_edge(7),
        24 => clique(7),
        other => panic!("paper query index {other} out of range 1..=24"),
    };
    p.with_name(format!("q{i}"))
}

/// All 24 paper queries, in order.
pub fn all_paper_queries() -> Vec<Pattern> {
    (1..=24).map(paper_query).collect()
}

/// The size-6 queries `q9..q16` used in Fig. 11 and Fig. 12.
pub fn size6_queries() -> Vec<Pattern> {
    (9..=16).map(paper_query).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper_grouping() {
        for i in 1..=24 {
            let p = paper_query(i);
            let expected = if i <= 8 {
                5
            } else if i <= 16 {
                6
            } else {
                7
            };
            assert_eq!(p.size(), expected, "q{i}");
        }
    }

    #[test]
    fn q8_q16_q24_are_cliques() {
        for i in [8, 16, 24] {
            assert!(paper_query(i).is_clique(), "q{i} must be a clique");
        }
        for i in [7, 15, 23] {
            let p = paper_query(i);
            assert!(!p.is_clique());
            assert_eq!(p.num_edges(), p.size() * (p.size() - 1) / 2 - 1);
        }
    }

    #[test]
    fn queries_are_pairwise_distinct() {
        let qs = all_paper_queries();
        for i in 0..qs.len() {
            for j in (i + 1)..qs.len() {
                if qs[i].size() != qs[j].size() {
                    continue;
                }
                // Cheap distinctness check: degree multiset or edge count.
                let mut di: Vec<_> = (0..qs[i].size()).map(|u| qs[i].degree(u)).collect();
                let mut dj: Vec<_> = (0..qs[j].size()).map(|u| qs[j].degree(u)).collect();
                di.sort_unstable();
                dj.sort_unstable();
                assert!(
                    di != dj
                        || qs[i].num_edges() != qs[j].num_edges()
                        || !isomorphic(&qs[i], &qs[j]),
                    "q{} and q{} are isomorphic",
                    i + 1,
                    j + 1
                );
            }
        }
    }

    /// Brute-force isomorphism test for catalog sanity (≤ 7! permutations).
    fn isomorphic(a: &Pattern, b: &Pattern) -> bool {
        let n = a.size();
        let mut perm: Vec<usize> = (0..n).collect();
        loop {
            if (0..n)
                .all(|u| (0..n).all(|v| u == v || a.has_edge(u, v) == b.has_edge(perm[u], perm[v])))
            {
                return true;
            }
            if !next_permutation(&mut perm) {
                return false;
            }
        }
    }

    fn next_permutation(p: &mut [usize]) -> bool {
        let n = p.len();
        if n < 2 {
            return false;
        }
        let mut i = n - 1;
        while i > 0 && p[i - 1] >= p[i] {
            i -= 1;
        }
        if i == 0 {
            return false;
        }
        let mut j = n - 1;
        while p[j] <= p[i - 1] {
            j -= 1;
        }
        p.swap(i - 1, j);
        p[i..].reverse();
        true
    }

    #[test]
    fn wheel_and_prism_shapes() {
        let w = wheel(6);
        assert_eq!(w.degree(0), 5);
        assert_eq!(w.num_edges(), 10);
        let pr = paper_query(11);
        assert!((0..6).all(|u| pr.degree(u) == 3));
    }

    #[test]
    fn classics_are_well_formed() {
        assert!(triangle().is_clique());
        assert_eq!(wedge().num_edges(), 2);
        assert_eq!(diamond().num_edges(), 5);
        assert_eq!(star3().degree(0), 3);
        assert_eq!(square().num_edges(), 4);
        assert_eq!(tailed_triangle().num_edges(), 4);
        assert_eq!(k4().num_edges(), 6);
    }
}
