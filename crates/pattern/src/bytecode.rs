//! Bytecode lowering of a [`MatchPlan`] (PR 7, DESIGN.md §4h).
//!
//! A [`MatchPlan`] describes each level's candidate sets as structured
//! [`SetDef`]s: a base operand plus a chain of set operations. The engine's
//! claim loop used to re-interpret that structure on every claim — match on
//! the base variant, walk the op vector, re-derive ping/pong staging and the
//! final masked write. [`PlanBytecode::lower`] performs that interpretation
//! exactly once, producing a flat stream of fixed-width [`Instr`]s whose
//! order *is* the execution order. The kernel's tier-0 dispatch loop then
//! just walks `instrs_at(level)` and issues one set-operation call per
//! instruction; tier-1 monomorphized bodies pattern-match the stream shape
//! ([`SpecShape`]) instead of the plan.
//!
//! The lowering is semantics-preserving by construction: each instruction
//! corresponds 1:1 to a set-operation call the plan-walking interpreter
//! would have made, with identical operands, masks and staging-buffer
//! choices. The engine gates this with metric-bit-identity tests (counts,
//! simulated instructions, lane utilization) over q1..q24.
//!
//! Streams are validated at lower time by [`PlanBytecode::verify`] — a
//! malformed stream (out-of-range set ids, forward dependencies, chains
//! past [`MAX_PATTERN_SIZE`]) is rejected with a named [`BytecodeError`]
//! instead of debug-asserting inside the dispatch loop.

use crate::pattern::MAX_PATTERN_SIZE;
use crate::plan::{Base, LabelMask, MatchPlan, OpKind};
use crate::symmetry::Bound;
use stmatch_graph::Label;

/// Sentinel for "no set reference" in [`Instr::dep`] and [`LevelMeta::cand`].
pub const NO_SET: u16 = u16::MAX;

/// Instruction opcodes. Each maps to exactly one set-operation call shape in
/// the kernel's dispatch loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpCode {
    /// Materialize the (mask-filtered) neighbor list of the vertex at order
    /// position `pos` straight into the arena slab of set `dst`. Encodes a
    /// chain-free `Base::Neighbors` set; always `last`.
    MaterializeBase,
    /// Materialize the *unfiltered* neighbor list of the vertex at `pos`
    /// into the ping staging buffer, opening a chain that subsequent
    /// [`OpCode::ChainStep`]s consume. Encodes a `Base::Neighbors` set with
    /// a non-empty op chain; never `last`.
    BeginChain,
    /// Combine previously computed set `dep` (an arena slab, resolved
    /// through `dep_level`'s unroll cursor) with the neighbor list at `pos`
    /// under `kind`. When `last`, the masked result lands in `dst`'s arena
    /// slab; otherwise the unfiltered result opens a chain in ping.
    ApplyFromSet,
    /// Combine the open chain value (ping) with the neighbor list at `pos`
    /// under `kind`. When `last`, the masked result lands in `dst`'s arena
    /// slab and closes the chain; otherwise it goes to pong and the staging
    /// buffers swap.
    ChainStep,
}

/// One fixed-width bytecode instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Instr {
    /// What to execute.
    pub code: OpCode,
    /// Combining operator (meaningful for `ApplyFromSet` / `ChainStep`;
    /// `Intersect` otherwise).
    pub kind: OpKind,
    /// Order position of the neighbor-list operand.
    pub pos: u8,
    /// Destination set id. Every instruction of a set's program carries the
    /// same `dst`; only the `last` one writes to its arena slab.
    pub dst: u16,
    /// Input set id for `ApplyFromSet`; [`NO_SET`] otherwise.
    pub dep: u16,
    /// Level at which `dep` was computed (selects its unroll slot).
    pub dep_level: u8,
    /// True on the final instruction of a set's program: the write that
    /// applies `mask` and lands in the arena.
    pub last: bool,
    /// Label filter for the produced elements ([`LabelMask::ALL`] on
    /// non-final steps).
    pub mask: LabelMask,
}

/// Per-level side table: everything the claim loop needs besides the
/// instruction stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelMeta {
    /// Candidate set iterated at this level ([`NO_SET`] at level 0).
    pub cand: u16,
    /// Level at which the candidate set is computed (lifted sets are
    /// computed at an earlier level and re-read).
    pub cand_level: u8,
    /// Required data-vertex label (None when unlabeled).
    pub label: Option<Label>,
    /// Label needing an exact match-time check because the mask cannot
    /// represent it (see `MatchPlan::residual_label_check`).
    pub resid: Option<Label>,
}

/// Shapes the tier-1 specializer recognizes. Detected once at lower time
/// from the instruction stream itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecShape {
    /// One single-`Intersect` `ApplyFromSet` per level, each consuming the
    /// previous level's candidate — the clique cascade (q8 and friends).
    Cascade,
    /// Every instruction is a chain-free `MaterializeBase` with an all-pass
    /// mask — path/star plans whose levels need no combining ops.
    Path,
    /// Anything else; served by the tier-0 dispatch loop.
    General,
}

/// Named lower-time validation failures (satellite: mirrors
/// `EngineConfig::validate()`'s style — reject early, by name, instead of
/// debug-asserting per claim).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BytecodeError {
    /// `level_ptr` must be monotonically non-decreasing and span the stream.
    LevelPtrNotMonotonic { level: usize },
    /// An instruction's destination set id is outside `0..num_sets`.
    SetOutOfRange { instr: usize, set: u16 },
    /// An `ApplyFromSet` dependency is out of range or not yet computed
    /// (forward reference) at the point it is read.
    DepOutOfRange { instr: usize, dep: u16 },
    /// The recorded `dep_level` disagrees with where `dep` was written.
    DepLevelMismatch { instr: usize, dep: u16 },
    /// A neighbor-operand position is not strictly below its level.
    PosOutOfRange { instr: usize, pos: u8 },
    /// A set's program chains more ops than [`MAX_PATTERN_SIZE`].
    ChainTooLong { set: u16 },
    /// A `ChainStep` with no open chain to consume.
    DanglingChainStep { instr: usize },
    /// A level ends (or a new set's program begins) with a chain still open.
    UnterminatedChain { level: usize },
    /// Two `last` instructions target the same set.
    DuplicateWrite { set: u16 },
    /// A set is never written by any `last` instruction.
    MissingWrite { set: u16 },
    /// A non-final instruction carries a restrictive mask (masks are only
    /// applied on the final arena write).
    MaskedIntermediate { instr: usize },
    /// A level's candidate reference is out of range or computed too late.
    CandidateOutOfRange { level: usize },
}

impl std::fmt::Display for BytecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BytecodeError::LevelPtrNotMonotonic { level } => {
                write!(f, "bytecode: level_ptr not monotonic at level {level}")
            }
            BytecodeError::SetOutOfRange { instr, set } => {
                write!(f, "bytecode: instr {instr} targets out-of-range set {set}")
            }
            BytecodeError::DepOutOfRange { instr, dep } => {
                write!(
                    f,
                    "bytecode: instr {instr} reads unwritten/out-of-range set {dep}"
                )
            }
            BytecodeError::DepLevelMismatch { instr, dep } => {
                write!(
                    f,
                    "bytecode: instr {instr} records wrong dep_level for set {dep}"
                )
            }
            BytecodeError::PosOutOfRange { instr, pos } => {
                write!(
                    f,
                    "bytecode: instr {instr} operand position {pos} not below its level"
                )
            }
            BytecodeError::ChainTooLong { set } => {
                write!(
                    f,
                    "bytecode: set {set} chains past MAX_PATTERN_SIZE ({MAX_PATTERN_SIZE})"
                )
            }
            BytecodeError::DanglingChainStep { instr } => {
                write!(
                    f,
                    "bytecode: instr {instr} is a ChainStep with no open chain"
                )
            }
            BytecodeError::UnterminatedChain { level } => {
                write!(f, "bytecode: level {level} leaves a chain unterminated")
            }
            BytecodeError::DuplicateWrite { set } => {
                write!(f, "bytecode: set {set} written twice")
            }
            BytecodeError::MissingWrite { set } => {
                write!(f, "bytecode: set {set} never written")
            }
            BytecodeError::MaskedIntermediate { instr } => {
                write!(
                    f,
                    "bytecode: non-final instr {instr} carries a restrictive mask"
                )
            }
            BytecodeError::CandidateOutOfRange { level } => {
                write!(f, "bytecode: level {level} candidate reference invalid")
            }
        }
    }
}

impl std::error::Error for BytecodeError {}

/// A lowered plan: flat instruction stream plus per-level side tables.
///
/// Construction via [`PlanBytecode::lower`] always verifies; the fields stay
/// private so a verified stream cannot be silently edited (the test-only
/// [`mutation`] module is the sanctioned back door).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanBytecode {
    /// The flat stream, grouped by level ascending; within a level,
    /// execution order (dependencies precede dependents, chain programs are
    /// contiguous).
    instrs: Vec<Instr>,
    /// `instrs[level_ptr[l]..level_ptr[l+1]]` runs when entering level `l`.
    level_ptr: Vec<u32>,
    /// Per-level candidate/label metadata, indexed by level.
    levels: Vec<LevelMeta>,
    /// Flattened symmetry bounds; `bounds[bound_ptr[l]..bound_ptr[l+1]]`
    /// guards level `l`. Same element type as `MatchPlan::bounds`.
    bounds: Vec<(usize, Bound)>,
    bound_ptr: Vec<u32>,
    /// Number of sets the arena must hold (`NUM_SETS`).
    num_sets: u16,
    /// Detected specialization shape.
    shape: SpecShape,
}

impl PlanBytecode {
    /// Lowers `plan` into a verified instruction stream.
    ///
    /// Encoding rules (mirroring the plan-walking interpreter exactly):
    ///
    /// | set definition            | emitted program                                  |
    /// |---------------------------|--------------------------------------------------|
    /// | `Neighbors(p)`, no ops    | `MaterializeBase(p, mask)`                       |
    /// | `Neighbors(p)` + n ops    | `BeginChain(p)` then n `ChainStep`s              |
    /// | `Set(d)` + 1 op           | `ApplyFromSet(d, op, mask, last)`                |
    /// | `Set(d)` + n ops          | `ApplyFromSet(d, op0)` then n−1 `ChainStep`s     |
    ///
    /// Only the final instruction of each program carries the set's label
    /// mask and the `last` flag (the arena write); intermediates stage
    /// unfiltered values through ping/pong.
    pub fn lower(plan: &MatchPlan) -> Result<PlanBytecode, BytecodeError> {
        let k = plan.num_levels();
        let sets = plan.sets();
        let mut instrs = Vec::new();
        let mut level_ptr = Vec::with_capacity(k + 1);
        for level in 0..k {
            level_ptr.push(instrs.len() as u32);
            for sid in plan.sets_at_level(level) {
                let def = &sets[sid];
                let dst = sid as u16;
                match def.base {
                    Base::Neighbors(pos) if def.ops.is_empty() => instrs.push(Instr {
                        code: OpCode::MaterializeBase,
                        kind: OpKind::Intersect,
                        pos,
                        dst,
                        dep: NO_SET,
                        dep_level: 0,
                        last: true,
                        mask: def.mask,
                    }),
                    Base::Neighbors(pos) => {
                        instrs.push(Instr {
                            code: OpCode::BeginChain,
                            kind: OpKind::Intersect,
                            pos,
                            dst,
                            dep: NO_SET,
                            dep_level: 0,
                            last: false,
                            mask: LabelMask::ALL,
                        });
                        Self::push_chain(&mut instrs, dst, def.mask, &def.ops);
                    }
                    Base::Set(dep) => {
                        let first = def.ops[0];
                        let one = def.ops.len() == 1;
                        instrs.push(Instr {
                            code: OpCode::ApplyFromSet,
                            kind: first.kind,
                            pos: first.pos,
                            dst,
                            dep,
                            dep_level: sets[dep as usize].level,
                            last: one,
                            mask: if one { def.mask } else { LabelMask::ALL },
                        });
                        if !one {
                            Self::push_chain(&mut instrs, dst, def.mask, &def.ops[1..]);
                        }
                    }
                }
            }
        }
        level_ptr.push(instrs.len() as u32);

        let mut levels = Vec::with_capacity(k);
        let mut bounds = Vec::new();
        let mut bound_ptr = Vec::with_capacity(k + 1);
        for l in 0..k {
            bound_ptr.push(bounds.len() as u32);
            bounds.extend_from_slice(plan.bounds(l));
            let (cand, cand_level) = match plan.candidate_set(l) {
                Some(cid) => (cid, sets[cid as usize].level),
                None => (NO_SET, 0),
            };
            levels.push(LevelMeta {
                cand,
                cand_level,
                label: plan.level_label(l),
                resid: plan.residual_label_check(l),
            });
        }
        bound_ptr.push(bounds.len() as u32);

        let mut bc = PlanBytecode {
            instrs,
            level_ptr,
            levels,
            bounds,
            bound_ptr,
            num_sets: plan.num_sets() as u16,
            shape: SpecShape::General,
        };
        bc.shape = bc.detect_shape();
        bc.verify()?;
        Ok(bc)
    }

    fn push_chain(
        instrs: &mut Vec<Instr>,
        dst: u16,
        mask: LabelMask,
        ops: &[crate::plan::ChainOp],
    ) {
        let n = ops.len();
        for (i, op) in ops.iter().enumerate() {
            let last = i + 1 == n;
            instrs.push(Instr {
                code: OpCode::ChainStep,
                kind: op.kind,
                pos: op.pos,
                dst,
                dep: NO_SET,
                dep_level: 0,
                last,
                mask: if last { mask } else { LabelMask::ALL },
            });
        }
    }

    /// Validates the stream with a small abstract machine: walks every level
    /// tracking the open-chain state and the set of already-written slabs,
    /// rejecting the first structural violation by name.
    pub fn verify(&self) -> Result<(), BytecodeError> {
        let k = self.levels.len();
        let num_sets = self.num_sets as usize;
        if self.level_ptr.len() != k + 1
            || self.bound_ptr.len() != k + 1
            || self.level_ptr[0] != 0
            || *self.level_ptr.last().unwrap() as usize != self.instrs.len()
        {
            return Err(BytecodeError::LevelPtrNotMonotonic { level: 0 });
        }
        // `written[s]` = Some(level) once set s's arena slab has been
        // produced; dependency reads must refer back to one of these.
        let mut written: Vec<Option<u8>> = vec![None; num_sets];
        for level in 0..k {
            let (lo, hi) = (self.level_ptr[level], self.level_ptr[level + 1]);
            if lo > hi {
                return Err(BytecodeError::LevelPtrNotMonotonic { level });
            }
            // Open-chain state: Some((dst, steps so far)).
            let mut chain: Option<(u16, usize)> = None;
            for i in lo as usize..hi as usize {
                let ins = self.instrs[i];
                if ins.dst as usize >= num_sets {
                    return Err(BytecodeError::SetOutOfRange {
                        instr: i,
                        set: ins.dst,
                    });
                }
                if (ins.pos as usize) >= level.max(1) || (ins.pos as usize) >= MAX_PATTERN_SIZE {
                    return Err(BytecodeError::PosOutOfRange {
                        instr: i,
                        pos: ins.pos,
                    });
                }
                if !ins.last && !ins.mask.is_all() {
                    return Err(BytecodeError::MaskedIntermediate { instr: i });
                }
                match ins.code {
                    OpCode::ChainStep => {
                        let Some((dst, steps)) = chain else {
                            return Err(BytecodeError::DanglingChainStep { instr: i });
                        };
                        if dst != ins.dst {
                            return Err(BytecodeError::DanglingChainStep { instr: i });
                        }
                        if steps + 1 > MAX_PATTERN_SIZE {
                            return Err(BytecodeError::ChainTooLong { set: dst });
                        }
                        chain = if ins.last {
                            None
                        } else {
                            Some((dst, steps + 1))
                        };
                    }
                    code => {
                        if chain.is_some() {
                            return Err(BytecodeError::UnterminatedChain { level });
                        }
                        if code == OpCode::ApplyFromSet {
                            let dep = ins.dep as usize;
                            if dep >= num_sets {
                                return Err(BytecodeError::DepOutOfRange {
                                    instr: i,
                                    dep: ins.dep,
                                });
                            }
                            match written[dep] {
                                // Same-level deps are legal (within a level,
                                // dependencies precede dependents).
                                Some(at) if at as usize <= level => {}
                                _ => {
                                    return Err(BytecodeError::DepOutOfRange {
                                        instr: i,
                                        dep: ins.dep,
                                    })
                                }
                            }
                            if written[dep] != Some(ins.dep_level) {
                                return Err(BytecodeError::DepLevelMismatch {
                                    instr: i,
                                    dep: ins.dep,
                                });
                            }
                        } else if ins.dep != NO_SET {
                            return Err(BytecodeError::DepOutOfRange {
                                instr: i,
                                dep: ins.dep,
                            });
                        }
                        let opens = matches!(code, OpCode::BeginChain)
                            || (code == OpCode::ApplyFromSet && !ins.last);
                        if opens {
                            chain = Some((ins.dst, 1));
                        }
                    }
                }
                if ins.last {
                    if written[ins.dst as usize].is_some() {
                        return Err(BytecodeError::DuplicateWrite { set: ins.dst });
                    }
                    written[ins.dst as usize] = Some(level as u8);
                }
            }
            if chain.is_some() {
                return Err(BytecodeError::UnterminatedChain { level });
            }
        }
        if let Some(s) = written.iter().position(Option::is_none) {
            return Err(BytecodeError::MissingWrite { set: s as u16 });
        }
        for (l, meta) in self.levels.iter().enumerate().skip(1) {
            let cand = meta.cand as usize;
            if cand >= num_sets
                || written[cand] != Some(meta.cand_level)
                || meta.cand_level as usize > l
            {
                return Err(BytecodeError::CandidateOutOfRange { level: l });
            }
        }
        Ok(())
    }

    fn detect_shape(&self) -> SpecShape {
        let k = self.levels.len();
        if self
            .levels
            .iter()
            .any(|m| m.resid.is_some() || m.label.is_some())
        {
            return SpecShape::General;
        }
        let is_cascade = k >= 3
            && (1..k).all(|l| {
                let prog = self.instrs_at(l);
                let [ins] = prog else { return false };
                let meta = self.levels[l];
                if ins.dst != meta.cand || meta.cand_level as usize != l || !ins.mask.is_all() {
                    return false;
                }
                if l == 1 {
                    ins.code == OpCode::MaterializeBase && ins.pos == 0
                } else {
                    ins.code == OpCode::ApplyFromSet
                        && ins.kind == OpKind::Intersect
                        && ins.last
                        && ins.pos as usize == l - 1
                        && ins.dep == self.levels[l - 1].cand
                        && ins.dep_level as usize == l - 1
                }
            });
        if is_cascade {
            return SpecShape::Cascade;
        }
        let is_path = !self.instrs.is_empty()
            && self
                .instrs
                .iter()
                .all(|ins| ins.code == OpCode::MaterializeBase && ins.mask.is_all());
        if is_path {
            return SpecShape::Path;
        }
        SpecShape::General
    }

    /// The instructions to execute when entering `level`.
    #[inline]
    pub fn instrs_at(&self, level: usize) -> &[Instr] {
        &self.instrs[self.level_ptr[level] as usize..self.level_ptr[level + 1] as usize]
    }

    /// The whole stream, grouped by level.
    #[inline]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// `(candidate set id, level it is computed at)` for `level` (≥ 1).
    #[inline]
    pub fn candidate(&self, level: usize) -> (usize, usize) {
        let meta = self.levels[level];
        (meta.cand as usize, meta.cand_level as usize)
    }

    /// Per-level metadata.
    #[inline]
    pub fn level_meta(&self, level: usize) -> LevelMeta {
        self.levels[level]
    }

    /// Symmetry bounds guarding `level`.
    #[inline]
    pub fn bounds(&self, level: usize) -> &[(usize, Bound)] {
        &self.bounds[self.bound_ptr[level] as usize..self.bound_ptr[level + 1] as usize]
    }

    /// Number of levels (= pattern size).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of arena sets the stream writes.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets as usize
    }

    /// Detected tier-1 shape.
    #[inline]
    pub fn shape(&self) -> SpecShape {
        self.shape
    }

    /// Resident footprint of the stream plus side tables, for budget
    /// accounting and diagnostics.
    pub fn byte_size(&self) -> usize {
        self.instrs.len() * std::mem::size_of::<Instr>()
            + self.level_ptr.len() * std::mem::size_of::<u32>()
            + self.levels.len() * std::mem::size_of::<LevelMeta>()
            + self.bounds.len() * std::mem::size_of::<(usize, Bound)>()
            + self.bound_ptr.len() * std::mem::size_of::<u32>()
    }
}

/// Seeded-mutation hooks for the kill-test suite (tests only, mirroring
/// `service::mutation`): each helper produces a *well-formed but
/// semantically wrong* stream — it still passes [`PlanBytecode::verify`], so
/// only the golden-count/metric gates can catch it. Never called from
/// production paths.
pub mod mutation {
    use super::{OpCode, PlanBytecode, SpecShape};
    use crate::plan::OpKind;

    /// Swaps the [`OpKind`] of the first combining instruction
    /// (`Intersect` ↔ `Difference`), modelling an encoder that writes the
    /// wrong opcode. Returns false when the stream has no combining
    /// instruction to corrupt (pure materialization plans).
    pub fn swap_first_op_kind(bc: &mut PlanBytecode) -> bool {
        for ins in &mut bc.instrs {
            if matches!(ins.code, OpCode::ApplyFromSet | OpCode::ChainStep) {
                ins.kind = match ins.kind {
                    OpKind::Intersect => OpKind::Difference,
                    OpKind::Difference => OpKind::Intersect,
                };
                // A corrupted cascade no longer matches its detected shape;
                // demote so tier-1 cannot paper over the wrong opcode.
                bc.shape = SpecShape::General;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::plan::{MatchPlan, PlanOptions};

    fn lower_query(q: usize) -> (MatchPlan, PlanBytecode) {
        let plan = MatchPlan::compile(&catalog::paper_query(q), PlanOptions::default());
        let bc = PlanBytecode::lower(&plan).expect("lowering a compiled plan");
        (plan, bc)
    }

    #[test]
    fn all_paper_queries_lower_and_verify() {
        for q in 1..=24 {
            let (plan, bc) = lower_query(q);
            assert_eq!(bc.num_levels(), plan.num_levels(), "q{q}");
            assert_eq!(bc.num_sets(), plan.num_sets(), "q{q}");
            bc.verify().unwrap_or_else(|e| panic!("q{q}: {e}"));
        }
    }

    #[test]
    fn side_tables_agree_with_plan_accessors() {
        for q in 1..=24 {
            let (plan, bc) = lower_query(q);
            for l in 0..plan.num_levels() {
                assert_eq!(bc.bounds(l), plan.bounds(l), "q{q} level {l} bounds");
                let meta = bc.level_meta(l);
                assert_eq!(meta.label, plan.level_label(l), "q{q} level {l} label");
                assert_eq!(
                    meta.resid,
                    plan.residual_label_check(l),
                    "q{q} level {l} resid"
                );
                match plan.candidate_set(l) {
                    Some(cid) => {
                        assert_eq!(bc.candidate(l).0, cid as usize, "q{q} level {l} cand");
                        assert_eq!(
                            bc.candidate(l).1,
                            plan.sets()[cid as usize].level as usize,
                            "q{q} level {l} cand level"
                        );
                    }
                    None => assert_eq!(meta.cand, NO_SET, "q{q} level {l}"),
                }
            }
        }
    }

    #[test]
    fn instruction_programs_mirror_set_defs() {
        for q in 1..=24 {
            let (plan, bc) = lower_query(q);
            for level in 0..plan.num_levels() {
                let prog = bc.instrs_at(level);
                // One program per set, in set order; programs are contiguous
                // and end with exactly one `last` write per set.
                let expected: usize = plan
                    .sets_at_level(level)
                    .map(|sid| {
                        let def = &plan.sets()[sid];
                        match def.base {
                            Base::Neighbors(_) if def.ops.is_empty() => 1,
                            Base::Neighbors(_) => 1 + def.ops.len(),
                            Base::Set(_) => def.ops.len(),
                        }
                    })
                    .sum();
                assert_eq!(prog.len(), expected, "q{q} level {level}");
                let writes: Vec<u16> = prog.iter().filter(|i| i.last).map(|i| i.dst).collect();
                let want: Vec<u16> = plan.sets_at_level(level).map(|s| s as u16).collect();
                assert_eq!(writes, want, "q{q} level {level} write order");
            }
        }
    }

    #[test]
    fn shapes_detected_for_dominant_plans() {
        // q8 is the 5-clique: a pure intersect cascade.
        let (_, bc) = lower_query(8);
        assert_eq!(bc.shape(), SpecShape::Cascade);
        // q1 is the 5-path: all levels materialize plain neighbor lists.
        let (_, bc) = lower_query(1);
        assert_eq!(bc.shape(), SpecShape::Path);
        // Triangle (3-clique) is the smallest cascade.
        let plan = MatchPlan::compile(&catalog::triangle(), PlanOptions::default());
        assert_eq!(
            PlanBytecode::lower(&plan).unwrap().shape(),
            SpecShape::Cascade
        );
        // q6 mixes intersections and differences: general.
        let (_, bc) = lower_query(6);
        assert_eq!(bc.shape(), SpecShape::General);
    }

    #[test]
    fn labeled_plans_are_never_specialized() {
        let p = catalog::triangle().with_labels(&[1, 1, 1]);
        let plan = MatchPlan::compile(&p, PlanOptions::default());
        let bc = PlanBytecode::lower(&plan).unwrap();
        assert_eq!(bc.shape(), SpecShape::General);
    }

    #[test]
    fn verifier_rejects_out_of_range_set() {
        let (_, mut bc) = lower_query(8);
        let bad = bc.num_sets + 3;
        bc.instrs[0].dst = bad;
        assert!(matches!(
            bc.verify(),
            Err(BytecodeError::SetOutOfRange { set, .. }) if set == bad
        ));
    }

    #[test]
    fn verifier_rejects_forward_dependency() {
        let (_, mut bc) = lower_query(8);
        let i = bc
            .instrs
            .iter()
            .position(|x| x.code == OpCode::ApplyFromSet)
            .expect("clique cascade has ApplyFromSet");
        bc.instrs[i].dep = bc.instrs[i].dst; // self-reference: unwritten at read time
        assert!(matches!(
            bc.verify(),
            Err(BytecodeError::DepOutOfRange { .. })
        ));
    }

    #[test]
    fn verifier_rejects_wrong_dep_level() {
        let (_, mut bc) = lower_query(8);
        let i = bc
            .instrs
            .iter()
            .position(|x| x.code == OpCode::ApplyFromSet)
            .expect("cascade");
        bc.instrs[i].dep_level += 1;
        assert!(matches!(
            bc.verify(),
            Err(BytecodeError::DepLevelMismatch { .. })
        ));
    }

    #[test]
    fn verifier_rejects_position_at_or_above_level() {
        let (_, mut bc) = lower_query(8);
        bc.instrs[0].pos = MAX_PATTERN_SIZE as u8; // level-1 instr: pos must be 0
        assert!(matches!(
            bc.verify(),
            Err(BytecodeError::PosOutOfRange { .. })
        ));
    }

    #[test]
    fn verifier_rejects_dangling_and_overlong_chains() {
        // q16 (5-house, naive chains under code motion still chain on some
        // level) may not chain; build a naive plan which surely does.
        let plan = MatchPlan::compile(
            &catalog::paper_query(8),
            PlanOptions {
                code_motion: false,
                ..PlanOptions::default()
            },
        );
        let bc = PlanBytecode::lower(&plan).expect("naive plans lower too");
        let i = bc
            .instrs
            .iter()
            .position(|x| x.code == OpCode::ChainStep)
            .expect("naive clique plan carries chains");
        // Dangling: promote a mid-chain step to a fresh program head's slot.
        let mut dangling = bc.clone();
        dangling.instrs[i - 1].last = true;
        // i-1 was BeginChain/non-last; forcing last makes step i dangle
        // (and may also duplicate a write — either named error is a catch,
        // but chain integrity must be flagged before dispatch ever runs).
        assert!(dangling.verify().is_err());
        // Overlong: inflate the recorded chain by redirecting level_ptr is
        // invasive; instead append ChainSteps past the cap.
        let dst = bc.instrs[i].dst;
        let level = (0..bc.num_levels())
            .find(|&l| {
                let lo = bc.level_ptr[l] as usize;
                let hi = bc.level_ptr[l + 1] as usize;
                (lo..hi).contains(&i)
            })
            .unwrap();
        let end = bc.level_ptr[level + 1] as usize;
        let tail = Instr {
            code: OpCode::ChainStep,
            kind: OpKind::Intersect,
            pos: 0,
            dst,
            dep: NO_SET,
            dep_level: 0,
            last: false,
            mask: LabelMask::ALL,
        };
        // Re-open the chain at the end of the level and run it past the cap.
        let mut overlong = bc.clone();
        let insert_at = end;
        let mut prog = vec![
            Instr {
                code: OpCode::BeginChain,
                kind: OpKind::Intersect,
                pos: 0,
                dst,
                dep: NO_SET,
                dep_level: 0,
                last: false,
                mask: LabelMask::ALL,
            };
            1
        ];
        prog.extend(std::iter::repeat_n(tail, MAX_PATTERN_SIZE + 1));
        let n = prog.len() as u32;
        overlong.instrs.splice(insert_at..insert_at, prog);
        for p in overlong.level_ptr.iter_mut().skip(level + 1) {
            *p += n;
        }
        assert!(matches!(
            overlong.verify(),
            Err(BytecodeError::ChainTooLong { .. }) | Err(BytecodeError::DuplicateWrite { .. })
        ));
    }

    #[test]
    fn verifier_rejects_masked_intermediate_and_duplicate_write() {
        // Code-motion plans have at most one op per set (no intermediates);
        // a naive clique plan stages whole chains through ping/pong.
        let plan = MatchPlan::compile(
            &catalog::paper_query(8),
            PlanOptions {
                code_motion: false,
                ..PlanOptions::default()
            },
        );
        let mut bc = PlanBytecode::lower(&plan).unwrap();
        let i = bc
            .instrs
            .iter()
            .position(|x| !x.last)
            .expect("naive plans have staged intermediates");
        bc.instrs[i].mask = LabelMask::single(3);
        assert!(matches!(
            bc.verify(),
            Err(BytecodeError::MaskedIntermediate { .. })
        ));

        let (_, mut bc) = lower_query(8);
        let dup = bc.instrs[0];
        bc.instrs.insert(1, dup);
        for p in bc.level_ptr.iter_mut().skip(2) {
            *p += 1;
        }
        assert!(matches!(
            bc.verify(),
            Err(BytecodeError::DuplicateWrite { .. })
        ));
    }

    #[test]
    fn mutation_swaps_exactly_one_opcode_and_stays_well_formed() {
        let (_, mut bc) = lower_query(8);
        let before = bc.clone();
        assert!(mutation::swap_first_op_kind(&mut bc));
        assert_eq!(bc.verify(), Ok(()), "mutated stream must still verify");
        let diffs: Vec<usize> = before
            .instrs
            .iter()
            .zip(&bc.instrs)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(diffs.len(), 1, "exactly one instruction changed");
        // Pure path plans have nothing to corrupt.
        let (_, mut path) = lower_query(1);
        assert!(!mutation::swap_first_op_kind(&mut path));
    }
}
