//! Query patterns and matching plans for the STMatch reproduction.
//!
//! This crate owns everything that is computed *per query* before matching
//! starts:
//!
//! * [`Pattern`] — a small (≤ 8 vertex) connected query graph with optional
//!   vertex labels.
//! * [`catalog`] — the 24 evaluation queries `q1..q24` of the paper plus
//!   classic motifs used in tests.
//! * [`order`] — Dryadic-style static matching-order selection.
//! * [`symmetry`] — automorphism-group computation and symmetry-breaking
//!   partial orders, so each subgraph is counted once.
//! * [`plan`] — compilation of (pattern, order) into a [`plan::MatchPlan`]:
//!   the per-level candidate-set programs, with or without loop-invariant
//!   code motion (§VII of the paper), including the compact dependence-graph
//!   encoding of Fig. 9b and the merged multi-label intermediate sets of
//!   Fig. 10b.

pub mod bytecode;
pub mod catalog;
pub mod iso;
pub mod order;
pub mod pattern;
pub mod plan;
pub mod symmetry;

pub use bytecode::{BytecodeError, Instr, OpCode, PlanBytecode, SpecShape};
pub use pattern::{Pattern, MAX_PATTERN_SIZE};
pub use plan::{LabelMask, MatchPlan, OpKind, PlanOptions, SetDef};
