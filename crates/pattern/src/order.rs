//! Static matching-order selection.
//!
//! The paper adopts Dryadic's static matching order for all systems "for
//! fairness". We implement the same family of connectivity-constrained
//! greedy orders: start from a max-degree pattern vertex, then repeatedly
//! pick the unmatched vertex with the most already-matched neighbors
//! (maximizing pruning by set intersection), breaking ties by pattern degree
//! and then by vertex id for determinism.

use crate::Pattern;

/// A matching order `π` over the pattern's vertices.
///
/// Invariant: for every level `l >= 1`, `π[l]` is adjacent in the pattern to
/// at least one of `π[0..l]` — the property the backtracking loop relies on
/// to seed each candidate set from a neighbor list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchOrder {
    order: Vec<usize>,
    /// `backward[l]` = bitmask over *positions* `< l` whose pattern vertices
    /// are adjacent to `π[l]`.
    backward: Vec<u8>,
}

impl MatchOrder {
    /// Degeneracy (k-core) order: repeatedly remove the minimum-degree
    /// vertex; the *reverse* removal order places dense-core vertices
    /// first. An alternative to [`MatchOrder::greedy`] that favours early
    /// pruning on clique-like patterns; exposed so users can plug in
    /// Dryadic-style order search of their own.
    pub fn degeneracy(p: &Pattern) -> MatchOrder {
        let n = p.size();
        let mut removed = [false; crate::MAX_PATTERN_SIZE];
        let mut removal = Vec::with_capacity(n);
        for _ in 0..n {
            let next = (0..n)
                .filter(|&u| !removed[u])
                .min_by_key(|&u| {
                    let live_deg = (0..n).filter(|&v| !removed[v] && p.has_edge(u, v)).count();
                    (live_deg, u)
                })
                .expect("vertex remains");
            removed[next] = true;
            removal.push(next);
        }
        removal.reverse();
        // The reversed removal order may violate connectivity for sparse
        // patterns (e.g. paths); repair by stable-moving each offender
        // after one of its neighbors.
        let mut order: Vec<usize> = Vec::with_capacity(n);
        let mut pending = removal;
        while !pending.is_empty() {
            let pos = pending
                .iter()
                .position(|&u| order.is_empty() || order.iter().any(|&v| p.has_edge(u, v)))
                .expect("pattern is connected");
            order.push(pending.remove(pos));
        }
        MatchOrder::from_order(p, order)
    }

    /// Greedy max-connectivity order (see module docs).
    pub fn greedy(p: &Pattern) -> MatchOrder {
        let n = p.size();
        let start = (0..n)
            .max_by_key(|&u| (p.degree(u), std::cmp::Reverse(u)))
            .expect("pattern is non-empty");
        let mut order = Vec::with_capacity(n);
        let mut in_order = [false; crate::MAX_PATTERN_SIZE];
        order.push(start);
        in_order[start] = true;
        while order.len() < n {
            let next = (0..n)
                .filter(|&u| !in_order[u])
                .max_by_key(|&u| {
                    let back = order.iter().filter(|&&v| p.has_edge(u, v)).count();
                    (back, p.degree(u), std::cmp::Reverse(u))
                })
                .expect("some vertex remains");
            // Connectivity of the pattern guarantees back >= 1 once the
            // frontier is non-empty; assert in debug builds.
            debug_assert!(
                order.iter().any(|&v| p.has_edge(next, v)),
                "greedy order broke connectivity"
            );
            order.push(next);
            in_order[next] = true;
        }
        MatchOrder::from_order(p, order)
    }

    /// Edge-anchored order for incremental (delta) matching: matches
    /// pattern edge `(p, q)` at levels 0/1 and extends greedily with the
    /// same tie-breaking as [`MatchOrder::greedy`]. The incremental engine
    /// pins levels 0/1 to the two endpoints of an updated data edge, so
    /// every embedding counted through this order uses that edge — the
    /// anchor discipline of delta decomposition (DESIGN.md §4k).
    ///
    /// # Panics
    /// Panics if `(p, q)` is not an edge of the pattern.
    pub fn anchored(p: &Pattern, edge: (usize, usize)) -> MatchOrder {
        let n = p.size();
        assert!(
            p.has_edge(edge.0, edge.1),
            "anchor ({}, {}) is not a pattern edge",
            edge.0,
            edge.1
        );
        let mut order = vec![edge.0, edge.1];
        let mut in_order = [false; crate::MAX_PATTERN_SIZE];
        in_order[edge.0] = true;
        in_order[edge.1] = true;
        while order.len() < n {
            let next = (0..n)
                .filter(|&u| !in_order[u])
                .max_by_key(|&u| {
                    let back = order.iter().filter(|&&v| p.has_edge(u, v)).count();
                    (back, p.degree(u), std::cmp::Reverse(u))
                })
                .expect("some vertex remains");
            order.push(next);
            in_order[next] = true;
        }
        MatchOrder::from_order(p, order)
    }

    /// Wraps an explicit order, validating the connectivity invariant.
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of the pattern's vertices or
    /// violates the connectivity invariant.
    pub fn from_order(p: &Pattern, order: Vec<usize>) -> MatchOrder {
        let n = p.size();
        assert_eq!(order.len(), n, "order length mismatch");
        let mut seen = [false; crate::MAX_PATTERN_SIZE];
        for &u in &order {
            assert!(u < n, "vertex {u} out of range");
            assert!(!seen[u], "vertex {u} repeated in order");
            seen[u] = true;
        }
        let mut backward = Vec::with_capacity(n);
        for l in 0..n {
            let mut mask = 0u8;
            for (pos, &v) in order[..l].iter().enumerate() {
                if p.has_edge(order[l], v) {
                    mask |= 1 << pos;
                }
            }
            assert!(
                l == 0 || mask != 0,
                "order position {l} (vertex {}) has no matched neighbor",
                order[l]
            );
            backward.push(mask);
        }
        MatchOrder { order, backward }
    }

    /// Pattern size.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the order is empty (never, for valid patterns).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The pattern vertex matched at level `l`.
    #[inline]
    pub fn vertex_at(&self, l: usize) -> usize {
        self.order[l]
    }

    /// The full order `π`.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.order
    }

    /// The position of pattern vertex `u` in the order.
    pub fn position_of(&self, u: usize) -> usize {
        self.order
            .iter()
            .position(|&v| v == u)
            .expect("vertex in order")
    }

    /// Bitmask over positions `< l` adjacent to `π[l]`.
    #[inline]
    pub fn backward_mask(&self, l: usize) -> u8 {
        self.backward[l]
    }

    /// Iterator over backward-neighbor positions of level `l` in ascending
    /// order.
    pub fn backward_positions(&self, l: usize) -> impl Iterator<Item = usize> {
        let mut mask = self.backward[l];
        std::iter::from_fn(move || {
            if mask == 0 {
                None
            } else {
                let pos = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                Some(pos)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn greedy_order_is_connected_for_all_paper_queries() {
        for q in catalog::all_paper_queries() {
            let o = MatchOrder::greedy(&q);
            assert_eq!(o.len(), q.size());
            for l in 1..o.len() {
                assert_ne!(o.backward_mask(l), 0, "{} level {l}", q.name());
            }
        }
    }

    #[test]
    fn clique_order_has_full_backward_masks() {
        let o = MatchOrder::greedy(&catalog::clique(5));
        for l in 0..5 {
            assert_eq!(o.backward_mask(l), (1u8 << l) - 1);
        }
    }

    #[test]
    fn path_order_prefers_dense_frontier() {
        // For P4 = 0-1-2-3 the greedy order starts at an interior vertex
        // (degree 2) and must stay connected.
        let p = catalog::path(4);
        let o = MatchOrder::greedy(&p);
        assert!(p.degree(o.vertex_at(0)) == 2);
    }

    #[test]
    fn explicit_order_validation() {
        let p = catalog::triangle();
        let o = MatchOrder::from_order(&p, vec![2, 0, 1]);
        assert_eq!(o.position_of(0), 1);
        assert_eq!(o.backward_positions(2).collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "no matched neighbor")]
    fn rejects_disconnected_order() {
        // 0-1-2-3 path: order [0, 3, ...] breaks connectivity at level 1.
        let p = catalog::path(4);
        let _ = MatchOrder::from_order(&p, vec![0, 3, 1, 2]);
    }

    #[test]
    fn degeneracy_order_is_valid_for_all_paper_queries() {
        for q in catalog::all_paper_queries() {
            let o = MatchOrder::degeneracy(&q);
            assert_eq!(o.len(), q.size());
            for l in 1..o.len() {
                assert_ne!(o.backward_mask(l), 0, "{} level {l}", q.name());
            }
        }
    }

    #[test]
    fn degeneracy_order_puts_core_first_on_lollipop() {
        // K4 with a pendant: the pendant is removed first, so it lands
        // last in the matching order.
        let p = catalog::paper_query(5);
        let o = MatchOrder::degeneracy(&p);
        assert_eq!(o.vertex_at(o.len() - 1), 4, "pendant vertex matched last");
    }

    #[test]
    fn anchored_order_pins_the_edge_and_stays_connected() {
        for q in catalog::all_paper_queries() {
            for u in 0..q.size() {
                for v in 0..q.size() {
                    if !q.has_edge(u, v) {
                        continue;
                    }
                    let o = MatchOrder::anchored(&q, (u, v));
                    assert_eq!(o.vertex_at(0), u);
                    assert_eq!(o.vertex_at(1), v);
                    for l in 1..o.len() {
                        assert_ne!(o.backward_mask(l), 0, "{} level {l}", q.name());
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "not a pattern edge")]
    fn anchored_rejects_non_edges() {
        let _ = MatchOrder::anchored(&catalog::path(4), (0, 3));
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn rejects_duplicate_vertices() {
        let p = catalog::triangle();
        let _ = MatchOrder::from_order(&p, vec![0, 1, 1]);
    }
}
