//! Pattern automorphisms and symmetry-breaking partial orders.
//!
//! Without symmetry breaking, a pattern with `|Aut(P)|` automorphisms is
//! reported `|Aut(P)|` times per subgraph. Graph-mining systems (Dryadic
//! included) break the symmetry with a partial order over the pattern
//! vertices derived from the automorphism group, so each subgraph is
//! enumerated exactly once. We use the classic orbit–stabilizer scheme:
//! repeatedly pick the first vertex not fixed by the remaining group, order
//! it below its orbit, and restrict the group to the stabilizer.

use crate::order::MatchOrder;
use crate::Pattern;

/// Enumerates all automorphisms of `p` (label-preserving adjacency-preserving
/// permutations). Brute force over at most `8! = 40320` permutations, which
/// is instant for pattern-sized graphs.
pub fn automorphisms(p: &Pattern) -> Vec<Vec<usize>> {
    let n = p.size();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut result = Vec::new();
    loop {
        if p.is_automorphism(&perm) {
            result.push(perm.clone());
        }
        if !next_permutation(&mut perm) {
            break;
        }
    }
    result
}

fn next_permutation(p: &mut [usize]) -> bool {
    let n = p.len();
    if n < 2 {
        return false;
    }
    let mut i = n - 1;
    while i > 0 && p[i - 1] >= p[i] {
        i -= 1;
    }
    if i == 0 {
        return false;
    }
    let mut j = n - 1;
    while p[j] <= p[i - 1] {
        j -= 1;
    }
    p.swap(i - 1, j);
    p[i..].reverse();
    true
}

/// A single symmetry-breaking constraint: the data vertex matched to pattern
/// vertex `small` must be numerically less than the one matched to `large`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LessThan {
    pub small: usize,
    pub large: usize,
}

/// Computes a set of [`LessThan`] constraints over pattern vertices such
/// that exactly one embedding per subgraph satisfies all of them.
///
/// Orbit–stabilizer: while the remaining group `A` is non-trivial, take the
/// smallest vertex `v` moved by `A`, add `v < u` for every other vertex `u`
/// in `v`'s orbit under `A`, then restrict `A` to the stabilizer of `v`.
pub fn breaking_constraints(p: &Pattern) -> Vec<LessThan> {
    let mut group = automorphisms(p);
    let n = p.size();
    let mut constraints = Vec::new();
    loop {
        // Find the smallest vertex moved by any permutation in the group.
        let moved = (0..n).find(|&v| group.iter().any(|g| g[v] != v));
        let Some(v) = moved else { break };
        // Orbit of v.
        let mut orbit: Vec<usize> = group.iter().map(|g| g[v]).collect();
        orbit.sort_unstable();
        orbit.dedup();
        for &u in orbit.iter().filter(|&&u| u != v) {
            constraints.push(LessThan { small: v, large: u });
        }
        // Stabilizer of v.
        group.retain(|g| g[v] == v);
        if group.len() <= 1 {
            break;
        }
    }
    constraints
}

/// Direction of a per-level bound during matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// The candidate must be numerically less than the referenced match.
    Less,
    /// The candidate must be numerically greater than the referenced match.
    Greater,
}

/// Per-level symmetry bounds: `bounds[l]` lists `(earlier_position, Bound)`
/// pairs the candidate at level `l` must satisfy against already-matched
/// vertices.
pub fn bounds_for_order(p: &Pattern, order: &MatchOrder) -> Vec<Vec<(usize, Bound)>> {
    let constraints = breaking_constraints(p);
    let mut bounds: Vec<Vec<(usize, Bound)>> = vec![Vec::new(); order.len()];
    for c in constraints {
        let ps = order.position_of(c.small);
        let pl = order.position_of(c.large);
        if ps < pl {
            // `large` matched later: its candidate must exceed m[ps].
            bounds[pl].push((ps, Bound::Greater));
        } else {
            // `small` matched later: its candidate must be below m[pl].
            bounds[ps].push((pl, Bound::Less));
        }
    }
    bounds
}

/// `|Aut(P)|`, the factor separating embedding counts from subgraph counts.
pub fn automorphism_count(p: &Pattern) -> usize {
    automorphisms(p).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn automorphism_counts_of_known_patterns() {
        assert_eq!(automorphism_count(&catalog::triangle()), 6);
        assert_eq!(automorphism_count(&catalog::wedge()), 2);
        assert_eq!(automorphism_count(&catalog::square()), 8);
        assert_eq!(automorphism_count(&catalog::clique(5)), 120);
        assert_eq!(automorphism_count(&catalog::path(4)), 2);
        assert_eq!(automorphism_count(&catalog::star3()), 6);
        // Diamond (K4 - e): swap the two degree-3 vertices and/or the two
        // degree-2 vertices.
        assert_eq!(automorphism_count(&catalog::diamond()), 4);
    }

    #[test]
    fn labels_shrink_the_group() {
        let t = catalog::triangle();
        assert_eq!(automorphism_count(&t), 6);
        let labeled = t.with_labels(&[0, 0, 1]);
        assert_eq!(automorphism_count(&labeled), 2);
    }

    #[test]
    fn triangle_constraints_form_total_order() {
        let cs = breaking_constraints(&catalog::triangle());
        // v0 < v1, v0 < v2 from orbit of 0; then v1 < v2 from stabilizer.
        assert_eq!(cs.len(), 3);
        assert!(cs.contains(&LessThan { small: 0, large: 1 }));
        assert!(cs.contains(&LessThan { small: 0, large: 2 }));
        assert!(cs.contains(&LessThan { small: 1, large: 2 }));
    }

    #[test]
    fn clique_constraints_count() {
        // K_n symmetry breaking yields a full chain: n*(n-1)/2 pairs... the
        // orbit-stabilizer scheme emits (n-1) + (n-2) + ... + 1 constraints.
        let cs = breaking_constraints(&catalog::clique(5));
        assert_eq!(cs.len(), 10);
    }

    #[test]
    fn asymmetric_pattern_has_no_constraints() {
        // The smallest asymmetric tree: a 6-path with one extra leaf hung
        // off vertex 2, giving the center three branches of distinct
        // lengths (1, 2, 3).
        let p = Pattern::new(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (2, 6)]);
        assert_eq!(automorphism_count(&p), 1);
        assert!(breaking_constraints(&p).is_empty());
    }

    #[test]
    fn bounds_reference_earlier_positions_only() {
        for q in catalog::all_paper_queries() {
            let order = MatchOrder::greedy(&q);
            let bounds = bounds_for_order(&q, &order);
            for (l, bs) in bounds.iter().enumerate() {
                for &(pos, _) in bs {
                    assert!(pos < l, "{}: bound at level {l} references {pos}", q.name());
                }
            }
        }
    }

    #[test]
    fn wedge_bounds_pick_endpoints() {
        // Wedge 0-1-2 (center 1): constraints 0 < 2.
        let p = catalog::wedge();
        let cs = breaking_constraints(&p);
        assert_eq!(cs, vec![LessThan { small: 0, large: 2 }]);
        let order = MatchOrder::greedy(&p);
        let bounds = bounds_for_order(&p, &order);
        let total: usize = bounds.iter().map(|b| b.len()).sum();
        assert_eq!(total, 1);
    }
}
