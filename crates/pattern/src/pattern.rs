//! The query-pattern representation.

use stmatch_graph::{Graph, Label};

/// Maximum number of vertices in a query pattern. The paper evaluates
/// patterns of up to 7 vertices; we allow 8 so adjacency fits a `u8` bitmask
/// per vertex and every per-pattern array is stack-sized.
pub const MAX_PATTERN_SIZE: usize = 8;

/// A small connected query graph.
///
/// Adjacency is stored as one bitmask per vertex (`adj[u] & (1 << v) != 0`
/// iff `{u, v}` is an edge), which makes the plan compiler's subset algebra
/// trivial. Vertices may carry labels; label 0 with `labeled == false` means
/// "unlabeled query".
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Pattern {
    n: usize,
    adj: [u8; MAX_PATTERN_SIZE],
    labels: [Label; MAX_PATTERN_SIZE],
    labeled: bool,
    name: String,
}

impl Pattern {
    /// Builds an unlabeled pattern from an edge list.
    ///
    /// # Panics
    /// Panics if `n` exceeds [`MAX_PATTERN_SIZE`], if an edge is out of
    /// range or a self-loop, or if the pattern is not connected.
    pub fn new(n: usize, edges: &[(usize, usize)]) -> Pattern {
        assert!(
            (1..=MAX_PATTERN_SIZE).contains(&n),
            "pattern size {n} out of range 1..={MAX_PATTERN_SIZE}"
        );
        let mut adj = [0u8; MAX_PATTERN_SIZE];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for size {n}");
            assert_ne!(u, v, "self-loop ({u},{v})");
            adj[u] |= 1 << v;
            adj[v] |= 1 << u;
        }
        let p = Pattern {
            n,
            adj,
            labels: [0; MAX_PATTERN_SIZE],
            labeled: false,
            name: String::new(),
        };
        assert!(p.is_connected(), "pattern must be connected");
        p
    }

    /// Names the pattern (used in benchmark tables).
    pub fn with_name(mut self, name: impl Into<String>) -> Pattern {
        self.name = name.into();
        self
    }

    /// Returns a copy with the given vertex labels.
    pub fn with_labels(mut self, labels: &[Label]) -> Pattern {
        assert_eq!(labels.len(), self.n, "label count mismatch");
        self.labels[..self.n].copy_from_slice(labels);
        self.labeled = true;
        self
    }

    /// Returns a copy with labels drawn uniformly from `0..num_labels` using
    /// a simple deterministic mix of `seed` (the paper assigns random labels
    /// to query graphs for the labeled experiments).
    pub fn with_random_labels(self, num_labels: u32, seed: u64) -> Pattern {
        assert!(num_labels >= 1);
        let mut labels = [0 as Label; MAX_PATTERN_SIZE];
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        for slot in labels.iter_mut().take(self.n) {
            // SplitMix64 step: cheap, deterministic, good enough for labels.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            *slot = (z % num_labels as u64) as Label;
        }
        let n = self.n;
        let mut p = self;
        p.labels[..n].copy_from_slice(&labels[..n]);
        p.labeled = true;
        p
    }

    /// Converts a small [`Graph`] into a pattern (vertices must number ≤ 8).
    pub fn from_graph(g: &Graph) -> Pattern {
        let n = g.num_vertices();
        assert!(n <= MAX_PATTERN_SIZE, "graph too large for a pattern");
        let edges: Vec<(usize, usize)> = g.edges().map(|(u, v)| (u as usize, v as usize)).collect();
        let mut p = Pattern::new(n, &edges).with_name(g.name().to_string());
        if g.is_labeled() {
            let labels: Vec<Label> = g.vertices().map(|v| g.label(v)).collect();
            p = p.with_labels(&labels);
        }
        p
    }

    /// Number of vertices.
    #[inline]
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj[..self.n]
            .iter()
            .map(|m| m.count_ones() as usize)
            .sum::<usize>()
            / 2
    }

    /// Pattern name (empty if unnamed).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True if `{u, v}` is a pattern edge.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u] & (1 << v) != 0
    }

    /// Neighbor bitmask of `u`.
    #[inline]
    pub fn adj_mask(&self, u: usize) -> u8 {
        self.adj[u]
    }

    /// Degree of `u` within the pattern.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].count_ones() as usize
    }

    /// Label of vertex `u` (0 when unlabeled).
    #[inline]
    pub fn label(&self, u: usize) -> Label {
        self.labels[u]
    }

    /// True if the pattern carries labels.
    #[inline]
    pub fn is_labeled(&self) -> bool {
        self.labeled
    }

    /// True if the pattern is a clique.
    pub fn is_clique(&self) -> bool {
        (0..self.n).all(|u| self.degree(u) == self.n - 1)
    }

    fn is_connected(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let mut seen: u8 = 1;
        let mut frontier: u8 = 1;
        while frontier != 0 {
            let mut next: u8 = 0;
            let mut f = frontier;
            while f != 0 {
                let u = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.adj[u];
            }
            frontier = next & !seen;
            seen |= next;
        }
        seen.count_ones() as usize >= self.n
    }

    /// Checks whether the vertex permutation `perm` (pattern → pattern) is an
    /// automorphism: preserves adjacency and labels.
    pub fn is_automorphism(&self, perm: &[usize]) -> bool {
        debug_assert_eq!(perm.len(), self.n);
        for u in 0..self.n {
            if self.labels[u] != self.labels[perm[u]] {
                return false;
            }
            for v in (u + 1)..self.n {
                if self.has_edge(u, v) != self.has_edge(perm[u], perm[v]) {
                    return false;
                }
            }
        }
        true
    }
}

impl std::fmt::Display for Pattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(n={}, m={})", self.name, self.n, self.num_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_basics() {
        let t = Pattern::new(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(t.size(), 3);
        assert_eq!(t.num_edges(), 3);
        assert!(t.is_clique());
        assert!(t.has_edge(0, 2));
        assert_eq!(t.degree(1), 2);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected() {
        let _ = Pattern::new(4, &[(0, 1), (2, 3)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let _ = Pattern::new(2, &[(0, 0), (0, 1)]);
    }

    #[test]
    fn labels_round_trip() {
        let p = Pattern::new(3, &[(0, 1), (1, 2), (2, 0)]).with_labels(&[5, 6, 5]);
        assert!(p.is_labeled());
        assert_eq!(p.label(1), 6);
    }

    #[test]
    fn random_labels_are_deterministic_and_in_range() {
        let p = Pattern::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let a = p.clone().with_random_labels(10, 42);
        let b = p.with_random_labels(10, 42);
        assert_eq!(a, b);
        for u in 0..4 {
            assert!(a.label(u) < 10);
        }
    }

    #[test]
    fn automorphism_checks() {
        let path = Pattern::new(3, &[(0, 1), (1, 2)]);
        assert!(path.is_automorphism(&[2, 1, 0])); // reversal
        assert!(!path.is_automorphism(&[1, 0, 2])); // breaks adjacency
        let labeled = path.with_labels(&[1, 0, 2]);
        assert!(!labeled.is_automorphism(&[2, 1, 0])); // labels differ
    }

    #[test]
    fn from_graph_roundtrip() {
        let g = stmatch_graph::builder::graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let p = Pattern::from_graph(&g);
        assert_eq!(p.size(), 4);
        assert_eq!(p.num_edges(), 4);
        assert!(!p.is_labeled());
    }
}
